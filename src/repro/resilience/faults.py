"""Deterministic fault injection: declarative plans over fabric events.

A :class:`FaultPlan` is pure data — a tuple of fault specifications
plus an optional seed — with a JSON round trip, so the same plan file
drives a virtual-time :class:`~repro.fabric.sim.SimFabric` run (faults
become deterministic virtual-time events), a wall-clock
:class:`~repro.fabric.threads.ThreadFabric` run (hop/send deliveries
fail and are retried), and a :class:`~repro.fabric.process.ProcessFabric`
run (a worker process really is SIGKILLed).

Determinism contract: a plan contains no hidden randomness. Faults
trigger on *counted* events — the n-th matching cross-host transfer, a
virtual time, a hop total — so the same plan over the same program
yields the same faults in the same places, every run. The only RNG in
this module is :meth:`FaultPlan.random`, which *generates* a plan from
a seed; once generated, the plan itself is again fully deterministic.

Fault vocabulary
----------------
:class:`Crash`         fail-stop of a PE (sim: place; process: worker
                       host), at a virtual time or a global hop count
:class:`MessageFault`  drop / duplicate / delay one class of cross-host
                       transfers ("hop" = migrating messengers,
                       "send" = point-to-point messages)
:class:`SlowNode`      degrade one PE's compute rate by a factor

The ambient :func:`injected` context mirrors
:func:`repro.fabric.desim.perturbed`: every ``SimFabric`` constructed
inside the context interprets the plan, which is how fault injection
reaches fabrics built deep inside the table builders.
"""

from __future__ import annotations

import json
import random
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any

from ..errors import FaultPlanError

__all__ = [
    "Crash",
    "MessageFault",
    "SlowNode",
    "FaultPlan",
    "PlanRuntime",
    "injected",
    "ambient",
    "STATS",
]

# Fired/masked tallies across all fabrics (test + demo aid; reset around
# a measured region, like desim.PERF_STATS).
STATS = {"fired": 0, "masked": 0, "lost": 0}

_ACTIONS = ("drop", "duplicate", "delay")
_KINDS = ("any", "hop", "send")


def _check_place(place) -> None:
    if isinstance(place, int):
        return
    if isinstance(place, (tuple, list)) and all(
            isinstance(x, int) for x in place):
        return
    raise FaultPlanError(
        f"fault place must be a place index or coordinate, got {place!r}")


@dataclass(frozen=True)
class Crash:
    """Fail-stop of one PE.

    ``place`` is a place index (any topology) or a coordinate; on the
    process fabric it names the worker *host* index. Exactly one of
    ``at_time`` (virtual seconds on the sim fabric, wall seconds on the
    process fabric) or ``at_hop`` (fires when the global cross-host hop
    count reaches the value) must be given.
    """

    place: Any
    at_time: float | None = None
    at_hop: int | None = None

    def __post_init__(self):
        _check_place(self.place)
        if (self.at_time is None) == (self.at_hop is None):
            raise FaultPlanError(
                "Crash needs exactly one of at_time / at_hop")
        if self.at_time is not None and self.at_time < 0:
            raise FaultPlanError(f"negative crash time {self.at_time}")
        if self.at_hop is not None and self.at_hop < 1:
            raise FaultPlanError(f"crash hop count must be >= 1")


@dataclass(frozen=True)
class MessageFault:
    """Drop, duplicate, or delay matching cross-host transfers.

    ``kind`` selects the transfer class (``"hop"`` for migrating
    messengers, ``"send"`` for point-to-point messages, ``"any"``);
    ``src``/``dst`` (place index or coordinate, None = wildcard) and
    ``tag`` (sends only) narrow the match. The fault fires on the
    ``nth`` matching transfer, or on every ``every``-th when given.
    Matching is by per-spec counters — fully deterministic.
    """

    action: str = "drop"
    kind: str = "any"
    src: Any = None
    dst: Any = None
    tag: Any = None
    nth: int = 1
    every: int | None = None
    seconds: float = 0.0

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise FaultPlanError(
                f"unknown message fault action {self.action!r}; "
                f"expected one of {_ACTIONS}")
        if self.kind not in _KINDS:
            raise FaultPlanError(
                f"unknown transfer kind {self.kind!r}; "
                f"expected one of {_KINDS}")
        if self.src is not None:
            _check_place(self.src)
        if self.dst is not None:
            _check_place(self.dst)
        if self.nth < 1:
            raise FaultPlanError("nth must be >= 1")
        if self.every is not None and self.every < 1:
            raise FaultPlanError("every must be >= 1")
        if self.seconds < 0:
            raise FaultPlanError("seconds must be >= 0")
        if self.action == "delay" and self.seconds == 0:
            raise FaultPlanError("a delay fault needs seconds > 0")


@dataclass(frozen=True)
class SlowNode:
    """Multiply one PE's compute cost by ``factor`` from ``from_time``."""

    place: Any
    factor: float = 2.0
    from_time: float = 0.0

    def __post_init__(self):
        _check_place(self.place)
        if self.factor <= 0:
            raise FaultPlanError(f"slow factor must be > 0, got {self.factor}")
        if self.from_time < 0:
            raise FaultPlanError("from_time must be >= 0")


_SPEC_TYPES = {"crash": Crash, "message": MessageFault, "slow": SlowNode}
_TYPE_NAMES = {Crash: "crash", MessageFault: "message", SlowNode: "slow"}


def _untuple(value):
    """JSON-safe place/src/dst encoding (tuples become lists)."""
    return list(value) if isinstance(value, tuple) else value


def _retuple(value):
    return tuple(value) if isinstance(value, list) else value


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, serializable set of faults.

    An empty plan is falsy and, by the resilience contract, a fabric
    given an empty (or no) plan behaves byte-identically to one built
    without fault support at all.
    """

    faults: tuple = ()
    seed: int | None = None
    name: str = ""

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            if not isinstance(spec, (Crash, MessageFault, SlowNode)):
                raise FaultPlanError(
                    f"unknown fault spec {spec!r}; expected Crash, "
                    f"MessageFault, or SlowNode")

    def __bool__(self) -> bool:
        return bool(self.faults)

    # -- views -----------------------------------------------------------
    @property
    def crashes(self) -> tuple:
        return tuple(f for f in self.faults if isinstance(f, Crash))

    @property
    def message_faults(self) -> tuple:
        return tuple(f for f in self.faults if isinstance(f, MessageFault))

    @property
    def slow_nodes(self) -> tuple:
        return tuple(f for f in self.faults if isinstance(f, SlowNode))

    # -- JSON round trip -------------------------------------------------
    def to_json(self, indent: int | None = 2) -> str:
        faults = []
        for spec in self.faults:
            record = {"type": _TYPE_NAMES[type(spec)]}
            for key, value in asdict(spec).items():
                if value is None:
                    continue
                record[key] = _untuple(value)
            faults.append(record)
        return json.dumps(
            {"name": self.name, "seed": self.seed, "faults": faults},
            indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}")
        if not isinstance(data, dict) or "faults" not in data:
            raise FaultPlanError(
                'fault plan JSON must be an object with a "faults" list')
        specs = []
        for record in data["faults"]:
            kind = record.get("type")
            spec_cls = _SPEC_TYPES.get(kind)
            if spec_cls is None:
                raise FaultPlanError(
                    f"unknown fault type {kind!r}; expected one of "
                    f"{sorted(_SPEC_TYPES)}")
            kwargs = {k: _retuple(v) for k, v in record.items()
                      if k != "type"}
            try:
                specs.append(spec_cls(**kwargs))
            except TypeError as exc:
                raise FaultPlanError(f"bad {kind} fault record: {exc}")
        return cls(faults=tuple(specs), seed=data.get("seed"),
                   name=data.get("name", ""))

    def to_file(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_json(fh.read())

    # -- seeded generation -----------------------------------------------
    @classmethod
    def random(cls, seed: int, places: int, *, crashes: int = 1,
               drops: int = 2, duplicates: int = 0, slow: int = 0,
               horizon: float = 1.0, dup_kind: str = "send",
               name: str = "") -> "FaultPlan":
        """Generate a plan deterministically from ``seed``.

        ``places`` bounds the place indices drawn; ``horizon`` bounds
        crash times and slow-node onsets. ``dup_kind`` selects the
        transfer class of duplicate faults (hop-only fabrics want
        ``"hop"``; the default keeps historic plans stable). The same
        (seed, arguments) always produce an identical plan.
        """
        rng = random.Random(seed)
        specs: list = []
        for _ in range(crashes):
            specs.append(Crash(
                place=rng.randrange(places),
                at_time=round(rng.uniform(0.0, horizon), 9)))
        for _ in range(drops):
            specs.append(MessageFault(
                action="drop", kind=rng.choice(("hop", "send", "any")),
                nth=rng.randrange(1, 25)))
        for _ in range(duplicates):
            specs.append(MessageFault(
                action="duplicate", kind=dup_kind,
                nth=rng.randrange(1, 25)))
        for _ in range(slow):
            specs.append(SlowNode(
                place=rng.randrange(places),
                factor=round(rng.uniform(1.5, 4.0), 6),
                from_time=round(rng.uniform(0.0, horizon), 9)))
        return cls(faults=tuple(specs), seed=seed,
                   name=name or f"random-{seed}")


# -- ambient plan (reaches fabrics built inside table builders) ----------

_AMBIENT: dict = {"plan": None, "recovery": True}


@contextmanager
def injected(plan: FaultPlan, recovery: bool = True):
    """Make every SimFabric built in this context interpret ``plan``.

    Mirrors :func:`repro.fabric.desim.perturbed`: the table builders
    construct their fabrics internally, so this is how a fault plan
    reaches a whole golden sweep. ``recovery=False`` lets the injected
    faults actually lose messengers and messages.
    """
    prior = (_AMBIENT["plan"], _AMBIENT["recovery"])
    _AMBIENT["plan"] = plan
    _AMBIENT["recovery"] = recovery
    try:
        yield
    finally:
        _AMBIENT["plan"], _AMBIENT["recovery"] = prior


def ambient() -> tuple:
    """The (plan, recovery) pair installed by :func:`injected`, if any."""
    return _AMBIENT["plan"], _AMBIENT["recovery"]


# -- runtime interpretation ----------------------------------------------

class PlanRuntime:
    """Per-fabric matcher: turns a plan into counted, deterministic hits.

    ``resolve`` maps a spec's place (index or coordinate) to the
    fabric's place index, or None when the spec does not name a place
    of this fabric (such specs are inert — a plan written for a 3x3
    grid may safely be applied to a 1-PE sequential run).
    """

    __slots__ = ("plan", "_mfs", "_mf_counts", "_crashes_time",
                 "_crashes_hop", "_slow", "hops")

    def __init__(self, plan: FaultPlan, resolve):
        self.plan = plan
        self.hops = 0  # cross-host messenger migrations seen
        mfs = []
        for spec in plan.message_faults:
            src = None if spec.src is None else resolve(spec.src)
            dst = None if spec.dst is None else resolve(spec.dst)
            if spec.src is not None and src is None:
                continue  # names a place this fabric does not have
            if spec.dst is not None and dst is None:
                continue
            mfs.append((spec, src, dst))
        self._mfs = mfs
        self._mf_counts = [0] * len(mfs)
        by_time, by_hop = [], []
        for spec in plan.crashes:
            index = resolve(spec.place)
            if index is None:
                continue
            (by_time if spec.at_time is not None else by_hop).append(
                (spec, index))
        by_time.sort(key=lambda pair: pair[0].at_time)
        by_hop.sort(key=lambda pair: pair[0].at_hop)
        self._crashes_time = by_time
        self._crashes_hop = by_hop
        self._slow = [
            (index, spec.factor, spec.from_time)
            for spec in plan.slow_nodes
            if (index := resolve(spec.place)) is not None
        ]

    def note_hop(self) -> None:
        self.hops += 1

    def message_action(self, kind: str, src_index: int, dst_index: int,
                       tag=None) -> MessageFault | None:
        """The fault (if any) that fires on this transfer.

        Counters advance on every *match*, whether or not the fault
        fires, so plans compose without order sensitivity. The first
        firing spec wins when several fire at once.
        """
        hit = None
        for i, (spec, src, dst) in enumerate(self._mfs):
            if spec.kind != "any" and spec.kind != kind:
                continue
            if src is not None and src != src_index:
                continue
            if dst is not None and dst != dst_index:
                continue
            if spec.tag is not None and kind == "send" and spec.tag != tag:
                continue
            count = self._mf_counts[i] = self._mf_counts[i] + 1
            if spec.every is not None:
                fired = count % spec.every == 0
            else:
                fired = count == spec.nth
            if fired and hit is None:
                hit = spec
        return hit

    def due_crashes(self, now: float) -> list:
        """Pop every crash whose time/hop trigger has been reached."""
        due = []
        while self._crashes_time and self._crashes_time[0][0].at_time <= now:
            due.append(self._crashes_time.pop(0))
        while self._crashes_hop and self._crashes_hop[0][0].at_hop <= self.hops:
            due.append(self._crashes_hop.pop(0))
        return due

    def pending_crashes(self) -> int:
        return len(self._crashes_time) + len(self._crashes_hop)

    def slow_factor(self, place_index: int, now: float) -> float:
        factor = 1.0
        for index, f, from_time in self._slow:
            if index == place_index and now >= from_time:
                factor *= f
        return factor
