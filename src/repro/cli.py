"""Command-line interface: ``python -m repro <command>``.

MESSENGERS lets a programmer "inject a migrating thread at command
line"; this is the reproduction's equivalent front door — run any
variant on the modeled cluster, regenerate any of the paper's tables
or figures, or list what is available, without writing a script.

Commands
--------
``variants``                       list runnable matmul variants
``run VARIANT [--n --ab --geometry --real --fabric KIND]``
                                   run one variant; ``--real`` executes
                                   the numerics and verifies vs NumPy;
                                   ``--fabric thread|process|socket``
                                   executes the variant's IR form on a
                                   real substrate (up to worker
                                   processes behind TCP)
``table {1,2,3,4}``                regenerate a paper table
``figure1``                        regenerate the space-time panels
``staggering [--max-n N]``         the Section 5 phase-count comparison
``wavefront [--n --block --pes]``  the wavefront extension study
``lint [PROGRAMS...] [--all]``     statically analyze registered IR
                                   programs (dependences, hop
                                   locality, wait/signal protocol;
                                   ``--races`` adds the static
                                   data-race analysis)
``fuzz-schedules [--seeds --smoke]``
                                   perturb simultaneous-event order:
                                   golden pipelines must stay
                                   bit-exact and the racy corpus must
                                   reproduce its predicted races
``bench [--smoke --against ...]``  run the pinned performance suite,
                                   write ``BENCH_<date>.json``, and
                                   compare against the previous
                                   snapshot (see docs/performance.md)
``faults [--plan --process --socket ...]``
                                   fault-injection demo: crashes and
                                   drops are masked by recovery and
                                   the virtual-time result stays
                                   bit-exact; ``--process`` SIGKILLs
                                   a real worker and recovers it;
                                   ``--socket`` does the same over TCP,
                                   detecting the kill by heartbeat
                                   loss (see docs/resilience.md)
"""

from __future__ import annotations

import argparse
import sys

from .matmul import (
    MatmulCase,
    run_variant,
    sequential_time_model,
    staggering_comparison,
    variant_names,
)
from .perfmodel import (
    build_figure1,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    figure1_report,
)
from .util.validation import assert_allclose

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Incremental Parallelization Using "
                    "Navigational Programming' (ICPP 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("variants", help="list runnable matmul variants")

    run_p = sub.add_parser("run", help="run one variant on the model")
    run_p.add_argument("variant", choices=variant_names())
    run_p.add_argument("--n", type=int, default=1536,
                       help="matrix order (default 1536)")
    run_p.add_argument("--ab", type=int, default=128,
                       help="algorithmic block order (default 128)")
    run_p.add_argument("--geometry", type=int, default=3,
                       help="PE count (1-D) or grid order (2-D)")
    run_p.add_argument("--real", action="store_true",
                       help="execute the numerics and verify vs NumPy "
                            "(default: shadow mode, timing only)")
    run_p.add_argument("--faults", default=None, metavar="PLAN.json",
                       help="inject the faults described in a "
                            "fault-plan file (see docs/resilience.md)")
    run_p.add_argument("--fabric", default="sim",
                       choices=("sim", "thread", "process", "socket"),
                       help="execution substrate; kinds other than "
                            "'sim' run the variant's IR form with real "
                            "numerics and verify vs NumPy (supported "
                            "for the navp-2d-* and mpi-gentleman "
                            "variants)")
    run_p.add_argument("--no-recovery", action="store_true",
                       help="with --faults: let injected faults "
                            "actually destroy messengers instead of "
                            "masking them")

    table_p = sub.add_parser("table", help="regenerate a paper table")
    table_p.add_argument("number", type=int, choices=[1, 2, 3, 4])

    sub.add_parser("figure1", help="regenerate the Figure 1 panels")

    stag_p = sub.add_parser("staggering",
                            help="forward vs reverse staggering phases")
    stag_p.add_argument("--max-n", type=int, default=16)

    wf_p = sub.add_parser("wavefront", help="the wavefront extension")
    wf_p.add_argument("--n", type=int, default=4096)
    wf_p.add_argument("--block", type=int, default=64)
    wf_p.add_argument("--pes", type=int, default=4)

    ds_p = sub.add_parser("datascan",
                          help="computation-to-data scan study")
    ds_p.add_argument("--pes", type=int, default=8)
    ds_p.add_argument("--items", type=int, default=200_000,
                      help="items per PE")

    rep_p = sub.add_parser("report",
                           help="regenerate the whole evaluation at once")
    rep_p.add_argument("--quick", action="store_true",
                       help="smallest matrix order per table only")

    lint_p = sub.add_parser(
        "lint", help="statically analyze registered IR programs")
    lint_p.add_argument("programs", nargs="*",
                        help="program names to lint (after seeding the "
                             "paper programs); default with --all: "
                             "every registered program")
    lint_p.add_argument("--all", action="store_true", dest="lint_all",
                        help="lint every registered program")
    lint_p.add_argument("--g", type=int, default=3,
                        help="grid order used to seed the paper "
                             "programs (default 3)")
    lint_p.add_argument("--loop", default=None,
                        help="also run the loop dependence analysis "
                             "over this loop variable in each linted "
                             "program that has it")
    lint_p.add_argument("--corpus", action="store_true",
                        help="run the known-bad corpus instead and "
                             "check every defect is caught")
    lint_p.add_argument("--races", action="store_true",
                        help="also run the static data-race analysis "
                             "over every linted root program's "
                             "injection closure")
    lint_p.add_argument("--strict", action="store_true",
                        help="treat warnings as errors for the exit "
                             "status")

    fuzz_p = sub.add_parser(
        "fuzz-schedules",
        help="perturb simultaneous-event order across seeds: golden "
             "pipelines must stay bit-exact, the racy corpus must "
             "reproduce its statically predicted races")
    fuzz_p.add_argument("--seeds", type=int, default=20,
                        help="number of perturbation seeds (default 20)")
    fuzz_p.add_argument("--g", type=int, default=3,
                        help="grid order for the 2-D golden suites "
                             "(default 3)")
    fuzz_p.add_argument("--smoke", action="store_true",
                        help="fixed small seed set, a few seconds — "
                             "the CI tier-1 mode")

    faults_p = sub.add_parser(
        "faults",
        help="fault-injection demo: run a pipeline under crashes and "
             "message drops with recovery on, and show the result is "
             "bit-exact vs the clean run")
    faults_p.add_argument("--plan", default=None, metavar="PLAN.json",
                          help="fault-plan file (default: a seeded "
                               "random plan)")
    faults_p.add_argument("--seed", type=int, default=7,
                          help="seed for the generated plan (default 7)")
    faults_p.add_argument("--g", type=int, default=3,
                          help="grid order (default 3)")
    faults_p.add_argument("--no-recovery", action="store_true",
                          help="show what the same plan does without "
                               "recovery")
    faults_p.add_argument("--socket", action="store_true",
                          help="also SIGKILL a TCP-fabric worker; the "
                               "controller detects it by heartbeat "
                               "loss and recovers by respawn + replay")
    faults_p.add_argument("--process", action="store_true",
                          help="also SIGKILL a real worker process "
                               "mid-run and recover by respawn+replay")

    bench_p = sub.add_parser(
        "bench", help="run the pinned performance suite")
    bench_p.add_argument("--out", default="benchmarks/out",
                         help="directory for BENCH_<date>.json snapshots "
                              "(default benchmarks/out)")
    bench_p.add_argument("--against", default=None,
                         help="snapshot to compare against (default: the "
                              "newest BENCH_*.json in --out)")
    bench_p.add_argument("--threshold", type=float, default=0.85,
                         help="regression threshold on the primary metric "
                              "ratio (default 0.85)")
    bench_p.add_argument("--smoke", action="store_true",
                         help="small sizes, <60 s — the CI tier-1 mode")
    bench_p.add_argument("--label", default="",
                         help="free-form label stored in the snapshot")
    bench_p.add_argument("--only", nargs="*", default=None,
                         help="run a subset of benchmarks by name")
    bench_p.add_argument("--no-write", action="store_true",
                         help="run and report without writing a snapshot")
    bench_p.add_argument("--repeats", type=int, default=3,
                         help="runs per benchmark; the fastest is kept "
                              "(default 3)")
    return parser


def _cmd_variants() -> int:
    for name in variant_names():
        print(name)
    return 0


def _cmd_run_on_fabric(args) -> int:
    """Run a variant's IR restatement on a real substrate."""
    import time as time_mod

    import numpy as np

    from .matmul import (
        build_fig11,
        build_fig13,
        build_fig15,
        build_gentleman_ir,
        run_ir2d_suite,
    )
    from .util.validation import random_matrix

    builders = {
        "navp-2d-dsc": build_fig11,
        "navp-2d-pipeline": build_fig13,
        "navp-2d-phase": build_fig15,
        "mpi-gentleman": build_gentleman_ir,
    }
    builder = builders.get(args.variant)
    if builder is None:
        print(f"--fabric {args.fabric} needs an IR form; available for: "
              f"{', '.join(sorted(builders))}", file=sys.stderr)
        return 2
    g = args.geometry
    ab = max(args.n // g, 1)
    a, b = random_matrix(g * ab, 220), random_matrix(g * ab, 221)
    suite = builder(g, a, b)
    t0 = time_mod.perf_counter()
    c, result = run_ir2d_suite(suite, args.fabric, trace=True)
    wall = time_mod.perf_counter() - t0
    ok = bool(np.allclose(c, a @ b))
    print(f"{args.variant} ({suite.name}) on the {args.fabric} fabric: "
          f"g={g} ab={ab}")
    print(f"  wall time      {wall:10.3f} s")
    print(f"  transfers      {result.trace.message_count():10d} "
          f"logical block transfer(s)")
    transport = result.trace.transport()
    if transport:
        hwm = result.trace.mailbox_hwm()
        print(f"  transport      mailbox high-water "
              f"{max(hwm.values())} frame(s) across "
              f"{len(transport)} worker(s)")
    print(f"  result vs NumPy {'correct' if ok else 'WRONG'}")
    return 0 if ok else 1


def _cmd_run(args) -> int:
    if args.fabric != "sim":
        return _cmd_run_on_fabric(args)
    case = MatmulCase(n=args.n, ab=args.ab, shadow=not args.real)
    if args.faults:
        from contextlib import nullcontext

        from .resilience import FaultPlan, injected
        from .resilience.faults import STATS

        plan = FaultPlan.from_file(args.faults)
        for key in STATS:
            STATS[key] = 0
        context = injected(plan, recovery=not args.no_recovery)
    else:
        from contextlib import nullcontext

        context = nullcontext()
    with context:
        result = run_variant(args.variant, case, geometry=args.geometry,
                             trace=False)
    seq, thrash = sequential_time_model(args.n)
    baseline = seq / thrash
    print(f"{args.variant}: n={args.n} ab={args.ab} "
          f"geometry={args.geometry}")
    print(f"  modeled time   {result.time:10.3f} s")
    print(f"  speedup        {baseline / result.time:10.2f} "
          f"(vs paging-free sequential {baseline:.2f} s)")
    if args.real and result.c is not None:
        err = assert_allclose(result.c, case.reference())
        print(f"  verified vs NumPy (relative error {err:.2e})")
    if args.faults:
        from .resilience.faults import STATS

        print(f"  faults         {STATS['fired']} fired, "
              f"{STATS['masked']} masked, {STATS['lost']} lost")
    return 0


def _cmd_table(args) -> int:
    builder = {1: build_table1, 2: build_table2,
               3: build_table3, 4: build_table4}[args.number]
    comparison = builder()
    print(comparison.render())
    failures = comparison.failed_shapes()
    if failures:
        print("\nshape check failures:")
        for claim, _ok, detail in failures:
            print(f"  {claim}: {detail}")
        return 1
    print("\nshape checks: all passed")
    return 0


def _cmd_figure1() -> int:
    panels = build_figure1()
    for panel in panels:
        print(panel.diagram)
        print(f"(makespan {panel.time:.4f} s)\n")
    bad = [claim for claim, ok, _d in figure1_report(panels) if not ok]
    if bad:
        print("failed claims:", "; ".join(bad))
        return 1
    print("all Figure 1 claims hold")
    return 0


def _cmd_staggering(args) -> int:
    print(f"{'n':>4} {'forward':>8} {'reverse':>8}")
    for n, fwd, rev in staggering_comparison(range(2, args.max_n + 1)):
        print(f"{n:4d} {fwd:8d} {rev:8d}")
    print("\nreverse staggering never needs more than 2 phases; forward "
          "needs 3\nunless n is a power of two (Section 5, item 3).")
    return 0


def _cmd_wavefront(args) -> int:
    from .wavefront import (
        WavefrontCase,
        run_dsc_wavefront,
        run_pipelined_wavefront,
        run_sequential_wavefront,
    )

    case = WavefrontCase(n=args.n, b=args.block, shadow=True)
    seq = run_sequential_wavefront(case, trace=False).time
    dsc = run_dsc_wavefront(case, args.pes, trace=False).time
    pipe = run_pipelined_wavefront(case, args.pes, trace=False).time
    print(f"wavefront n={args.n} block={args.block} on {args.pes} PEs")
    print(f"  sequential {seq:8.3f} s")
    print(f"  DSC        {dsc:8.3f} s  (speedup {seq / dsc:.2f})")
    print(f"  pipelined  {pipe:8.3f} s  (speedup {seq / pipe:.2f})")
    return 0


def _cmd_datascan(args) -> int:
    from .datascan import (
        DataScanCase,
        histogram,
        run_navp_scan,
        run_ship_data,
        run_spmd_reduce,
    )

    case = DataScanCase(pes=args.pes, items_per_pe=args.items)
    query = histogram(64)
    ship = run_ship_data(case, query)
    scan = run_navp_scan(case, query)
    reduce_ = run_spmd_reduce(case, query)
    print(f"{query.name} over {args.pes} x {args.items:,} items")
    print(f"  ship-data    {ship.time:8.3f} s")
    print(f"  navp-scan    {scan.time:8.3f} s  "
          f"({ship.time / scan.time:.1f}x over shipping)")
    print(f"  spmd-reduce  {reduce_.time:8.3f} s")
    return 0


def _cmd_lint(args) -> int:
    from .analysis import lint as lint_mod
    from .analysis.corpus import verify_corpus
    from .analysis.deps import loop_diagnostics
    from .analysis.diagnostics import DiagnosticReport
    from .errors import AnalysisError
    from .navp import ir
    from .viz.irprint import format_diagnostic

    if args.corpus:
        failures = 0
        for case, report, hit in verify_corpus():
            status = "caught" if hit else "MISSED"
            print(f"{case.name} [{case.category}]: {status}")
            for diag in report:
                print(format_diagnostic(diag, registry=case.registry))
            if not hit:
                failures += 1
        print(f"\n{len(verify_corpus()) - failures}"
              f"/{len(verify_corpus())} corpus defects caught")
        return 1 if failures else 0

    layouts = lint_mod.seed_paper_programs(args.g)
    if args.lint_all:
        names = sorted(ir.REGISTRY)
    elif args.programs:
        unknown = [n for n in args.programs if n not in ir.REGISTRY]
        if unknown:
            print(f"unknown program(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        names = args.programs
    else:
        print("nothing to lint: name programs or pass --all "
              "(registered programs: "
              f"{', '.join(sorted(ir.REGISTRY))})", file=sys.stderr)
        return 2

    report = lint_mod.lint_registry(names, layouts=layouts)
    if args.races:
        from .analysis.lint import _injected_names
        from .analysis.races import race_diagnostics

        injected = _injected_names(ir.REGISTRY)
        extra = DiagnosticReport()
        for name in names:
            if name not in injected:  # roots carry their closures
                extra.extend(race_diagnostics(ir.get_program(name)))
        report.extend(extra)
    if args.loop:
        extra = DiagnosticReport()
        for name in names:
            try:
                extra.extend(loop_diagnostics(ir.get_program(name),
                                              args.loop))
            except AnalysisError:
                continue  # no unique loop over that variable: skip
        report.extend(extra)

    for diag in report:
        print(format_diagnostic(diag))
    errors, warnings = len(report.errors), len(report.warnings)
    print(f"\n{len(names)} program(s) linted: {errors} error(s), "
          f"{warnings} warning(s), "
          f"{len(report) - errors - warnings} note(s)")
    if errors or (args.strict and warnings):
        return 1
    return 0


def _cmd_fuzz_schedules(args) -> int:
    from .fabric.fuzz import fuzz_corpus, fuzz_golden_suites

    seeds = tuple(range(6)) if args.smoke else tuple(range(args.seeds))
    failures = 0

    print(f"schedule fuzzing: {len(seeds)} seed(s)\n")
    print("golden pipelines (results must be schedule-independent):")
    for check in fuzz_golden_suites(g=args.g, seeds=seeds):
        print(f"  {check.describe()}")
        if not check.ok:
            failures += 1

    print("\nracy corpus (dynamic findings must match the static report):")
    for result in fuzz_corpus(seeds=seeds):
        print(f"  {result.describe()}")
        for sig in sorted(result.unpredicted, key=repr):
            print(f"    unpredicted: {sig!r}")
        if not result.ok:
            failures += 1

    if failures:
        print(f"\n{failures} fuzzing check(s) FAILED")
        return 1
    print("\nall schedule-fuzzing checks passed")
    return 0


def _cmd_faults(args) -> int:
    import numpy as np

    from .matmul.ir2d import build_fig11, run_ir2d_suite
    from .resilience import Crash, FaultPlan, injected
    from .resilience.faults import STATS
    from .util.validation import random_matrix

    if args.plan:
        plan = FaultPlan.from_file(args.plan)
    else:
        plan = FaultPlan.random(args.seed, places=args.g * args.g,
                                crashes=1, drops=2,
                                name=f"demo-{args.seed}")
    print(f"fault plan {plan.name or '(unnamed)'}: "
          f"{len(plan.crashes)} crash(es), "
          f"{len(plan.message_faults)} message fault(s), "
          f"{len(plan.slow_nodes)} slow node(s)")

    g = args.g
    n = 8 * g
    a, b = random_matrix(n, 220), random_matrix(n, 221)
    suite = build_fig11(g, a, b)

    _c, clean = run_ir2d_suite(suite, "sim")
    print(f"\nclean virtual time        {clean.time:.6f} s")

    for key in STATS:
        STATS[key] = 0
    with injected(plan, recovery=True):
        c, faulted = run_ir2d_suite(suite, "sim")
    exact = faulted.time == clean.time
    print(f"faulted, recovery on      {faulted.time:.6f} s  "
          f"({STATS['fired']} fault(s) fired, {STATS['masked']} masked"
          f"{', BIT-EXACT vs clean' if exact else ''})")
    numeric_ok = bool(np.allclose(c, a @ b))
    print(f"result vs NumPy           "
          f"{'correct' if numeric_ok else 'WRONG'}")
    status = 0 if (exact and numeric_ok) else 1

    if args.no_recovery:
        from .errors import DeadlockError

        for key in STATS:
            STATS[key] = 0
        try:
            with injected(plan, recovery=False):
                run_ir2d_suite(suite, "sim")
            print("faulted, recovery off     run completed "
                  f"({STATS['lost']} messenger(s)/message(s) lost)")
        except DeadlockError as exc:
            first = str(exc).splitlines()[0]
            print(f"faulted, recovery off     deadlock: {first}")

    if args.process:
        from .fabric.process import ProcessFabric
        from .fabric.topology import Grid2D

        psuite = build_fig11(2, random_matrix(16, 220),
                             random_matrix(16, 221))
        kill_plan = FaultPlan(faults=(Crash(place=1, at_hop=2),),
                              name="sigkill-demo")
        fabric = ProcessFabric(Grid2D(2), timeout=60.0,
                               faults=kill_plan, trace=True)
        for coord, node_vars in psuite.layout.items():
            fabric.load(coord, **node_vars)
        for coord, event, eargs, count in psuite.initial_signals:
            fabric.signal_initial(coord, event, *eargs, count=count)
        fabric.inject((0, 0), psuite.entry.name)
        result = fabric.run()
        print("\nprocess fabric: SIGKILLed worker 1 at hop 2")
        for event in result.trace.faults() + result.trace.recoveries():
            print(f"  [{event.kind}] {event.note}")
        print(f"  run completed in {result.time:.3f} s wall "
              f"({sum(fabric.restarts.values())} respawn(s))")

    if args.socket:
        from .fabric.socket import SocketFabric
        from .fabric.topology import Grid2D

        ssuite = build_fig11(2, random_matrix(16, 220),
                             random_matrix(16, 221))
        kill_plan = FaultPlan(faults=(Crash(place=1, at_hop=2),),
                              name="sigkill-tcp-demo")
        fabric = SocketFabric(Grid2D(2), timeout=90.0,
                              faults=kill_plan, trace=True)
        for coord, node_vars in ssuite.layout.items():
            fabric.load(coord, **node_vars)
        for coord, event, eargs, count in ssuite.initial_signals:
            fabric.signal_initial(coord, event, *eargs, count=count)
        fabric.inject((0, 0), ssuite.entry.name)
        result = fabric.run()
        print("\nsocket fabric: SIGKILLed TCP worker 1 at hop 2; the "
              "controller noticed via heartbeat loss (phi-accrual), "
              "not a process handle")
        for event in result.trace.faults() + result.trace.recoveries():
            print(f"  [{event.kind}] {event.note}")
        print(f"  run completed in {result.time:.3f} s wall "
              f"({sum(fabric.restarts.values())} respawn(s), "
              f"{fabric.stale_frames} stale frame(s) dropped)")
    return status


def _cmd_bench(args) -> int:
    from .perf import (
        compare_benches,
        find_previous,
        load_bench,
        render_report,
        run_suite,
        write_bench,
    )
    from .perf.report import make_snapshot

    try:
        results = run_suite(smoke=args.smoke, only=args.only,
                            repeats=args.repeats)
    except KeyError as exc:
        print(f"unknown benchmark {exc.args[0]!r}", file=sys.stderr)
        return 2
    snapshot = make_snapshot(results, label=args.label, smoke=args.smoke)

    previous_path = args.against or find_previous(args.out)
    if previous_path is not None:
        comparison = compare_benches(snapshot, load_bench(previous_path),
                                     threshold=args.threshold)
        comparison["against"] = str(previous_path)
        snapshot["vs_baseline"] = comparison
    if not args.no_write:
        path = write_bench(snapshot, args.out)
        print(f"wrote {path}")
    print(render_report(snapshot))
    if snapshot.get("vs_baseline", {}).get("regressions"):
        return 1
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "variants":
        return _cmd_variants()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "table":
        return _cmd_table(args)
    if args.command == "figure1":
        return _cmd_figure1()
    if args.command == "staggering":
        return _cmd_staggering(args)
    if args.command == "wavefront":
        return _cmd_wavefront(args)
    if args.command == "datascan":
        return _cmd_datascan(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "fuzz-schedules":
        return _cmd_fuzz_schedules(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "report":
        from .perfmodel.report import generate_report

        text = generate_report(quick=args.quick)
        print(text)
        return 0 if "FAILED" not in text else 1
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
