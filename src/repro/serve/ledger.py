"""The durable job ledger: an append-only, fsync'd JSONL write-ahead log.

Everything the serve daemon must not forget across a crash goes
through here *before* the client hears about it: a job is admitted,
dispatched, checkpoint-committed, and finished as ledger records, so a
daemon restarted on the same ``--state-dir`` can replay the log and
answer ``status``/``wait`` for every job it ever accepted — re-queue
the ones that never ran, resume the ones that were mid-flight, and
refuse to run a deduplicated idempotent resubmission twice.

Design points, in the order a crash investigator would ask about them:

* **Durability unit.** One record per line, JSON, appended and
  fsync'd before the daemon acts on it (write-ahead). Appends from
  concurrent submit threads share fsyncs by *group commit*: the first
  thread into the sync section fsyncs once for every line written so
  far, and the others observe their line already covered and return
  without touching the disk. Under concurrency the fsync count is
  bounded by the batch count, not the record count.

* **Torn tails.** A crash mid-``write`` can leave a half line at the
  end of the segment a session was appending to when it died — the
  *last* segment, or one whose successor begins a new session's
  ``open`` record. Replay drops a non-JSON (or newline-less) final
  line in exactly those segments and counts it in ``torn_records``;
  garbage anywhere else — interior lines, or the tail of a segment
  sealed by an fsync'd rotation — is real corruption and raises
  :class:`~repro.errors.LedgerError`. A WAL that silently skips
  records is worse than none.

* **Segments + compaction.** Records land in ``wal-NNNNNNNN.jsonl``
  segments, rotated every ``segment_max`` records; each daemon boot
  starts a fresh segment (so a torn tail is always in an old, closed
  file). :meth:`compact` rewrites all closed segments into one
  synthetic segment holding the minimal transition sequence per job —
  ``replay(compacted) == replay(full)`` by construction, which the
  tests pin. Compaction is crash-safe: the replacement is written to a
  temp file, fsync'd, renamed over the oldest closed segment, and only
  then are the rest unlinked (re-applying a leftover segment's records
  is idempotent).

* **Clean close.** :meth:`close` appends a ``close`` record; a boot
  that replays a log whose last record is not a ``close`` knows the
  previous daemon died unclean and reports it (``clean_close``).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field

from ..errors import LedgerError

__all__ = ["JobLedger", "LedgerReplay", "ReplayedJob", "replay_ledger",
           "TERMINAL_STATES"]

_SEGMENT_FMT = "wal-{:08d}.jsonl"
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".jsonl"

#: Job states a ``done`` record may carry; a replayed job in one of
#: these never runs again.
TERMINAL_STATES = frozenset({"completed", "failed"})


@dataclass
class ReplayedJob:
    """One job's state as reconstructed from the ledger."""

    jid: str
    seq: int
    spec: dict
    key: str | None = None          # idempotency key, if the submit had one
    state: str = "pending"          # pending | running | completed | failed
    reason: str = ""
    digest: str | None = None
    ok: bool | None = None
    wall_s: float | None = None
    restarts: int = 0
    last_cid: int | None = None     # last fully-committed checkpoint id

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


@dataclass
class LedgerReplay:
    """What a ledger directory replays to."""

    jobs: dict = field(default_factory=dict)   # jid -> ReplayedJob
    clean_close: bool = True                   # last record was a close
    sessions: int = 0                          # open records seen
    records: int = 0                           # records applied
    torn_records: int = 0                      # dropped half-written tails
    segments: int = 0
    max_seq: int = -1

    def by_key(self) -> dict:
        """Idempotency key -> jid, for dedup across restarts."""
        return {job.key: job.jid for job in self.jobs.values()
                if job.key is not None}


def _segment_paths(root: str) -> list:
    try:
        names = os.listdir(root)
    except FileNotFoundError:
        return []
    return [os.path.join(root, n) for n in sorted(names)
            if n.startswith(_SEGMENT_PREFIX) and n.endswith(_SEGMENT_SUFFIX)]


def _segment_index(path: str) -> int:
    name = os.path.basename(path)
    return int(name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])


def _apply(replay: LedgerReplay, record: dict) -> None:
    """Fold one record into the replay state. Transitions are
    idempotent so re-applied records (compaction leftovers, duplicated
    appends) converge to the same state."""
    kind = record.get("t")
    if kind == "open":
        replay.sessions += 1
        replay.clean_close = False
        return
    if kind == "close":
        replay.clean_close = True
        return
    jid = record.get("jid")
    if jid is None:
        raise LedgerError(f"ledger record without a jid: {record!r}")
    if kind == "admitted":
        job = replay.jobs.get(jid)
        if job is None or not job.terminal:
            replay.jobs[jid] = ReplayedJob(
                jid=jid, seq=int(record["seq"]), spec=dict(record["spec"]),
                key=record.get("key"))
        replay.max_seq = max(replay.max_seq, int(record["seq"]))
        return
    job = replay.jobs.get(jid)
    if job is None:
        raise LedgerError(
            f"ledger record for a never-admitted job: {record!r}")
    if kind == "dispatched":
        if not job.terminal:
            job.state = "running"
    elif kind == "ckpt":
        job.last_cid = int(record["cid"])
    elif kind == "done":
        state = record["state"]
        if state not in TERMINAL_STATES:
            raise LedgerError(f"done record with non-terminal state "
                              f"{state!r}: {record!r}")
        job.state = state
        job.reason = record.get("reason", "")
        job.digest = record.get("digest")
        job.ok = record.get("ok")
        job.wall_s = record.get("wall_s")
        job.restarts = int(record.get("restarts", 0))
    else:
        raise LedgerError(f"unknown ledger record type {kind!r}")


def _starts_new_session(text: str) -> bool:
    """True if a segment's first record is a session ``open`` — the
    marker that its predecessor was the last file some earlier session
    wrote, and may therefore legitimately end in a torn tail."""
    for line in text.split("\n"):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            return False
        return isinstance(record, dict) and record.get("t") == "open"
    return False


def _replay_lines(replay: LedgerReplay, text: str, allow_torn: bool,
                  path: str) -> None:
    lines = text.split("\n")
    # a complete file ends with "\n" -> final split element is ""
    complete = lines and lines[-1] == ""
    if complete:
        lines.pop()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        torn_position = (i == len(lines) - 1) and not complete
        try:
            record = json.loads(line)
        except ValueError:
            if torn_position and allow_torn:
                replay.torn_records += 1   # crash mid-write: drop the tail
                continue
            what = ("torn tail in a sealed segment" if torn_position
                    else "not a torn tail")
            raise LedgerError(
                f"corrupt ledger record ({what}) in {path} "
                f"line {i + 1}: {line[:80]!r}")
        if not isinstance(record, dict):
            raise LedgerError(f"ledger record is not an object: {line[:80]!r}")
        _apply(replay, record)
        replay.records += 1


def _replay_segments(replay: LedgerReplay, paths: list,
                     tail_open: bool) -> None:
    """Fold ``paths`` (in order) into ``replay``. A torn final line is
    tolerated only where a crash could have produced one: the last
    segment given (``tail_open`` True when its successor is a live
    session's segment) or a segment whose successor starts a new
    session — every other segment was sealed by an fsync'd rotation,
    so garbage at its end is real corruption and raises."""
    texts = []
    for path in paths:
        with open(path, encoding="utf-8", errors="replace") as fh:
            texts.append(fh.read())
    for n, (path, text) in enumerate(zip(paths, texts)):
        allow = (tail_open if n == len(paths) - 1
                 else _starts_new_session(texts[n + 1]))
        _replay_lines(replay, text, allow_torn=allow, path=path)


def replay_ledger(root: str) -> LedgerReplay:
    """Replay every segment under ``root`` into a :class:`LedgerReplay`.

    Tolerates an empty or missing directory and a torn final line (a
    record interrupted by a crash mid-write) in the last segment or in
    a segment a later session rotated away from; raises
    :class:`~repro.errors.LedgerError` on any other corruption.
    """
    replay = LedgerReplay()
    paths = _segment_paths(root)
    replay.segments = len(paths)
    _replay_segments(replay, paths, tail_open=True)
    return replay


def _synthesize(job: ReplayedJob) -> list:
    """The minimal record sequence that replays to ``job``'s state."""
    out = [{"t": "admitted", "jid": job.jid, "seq": job.seq,
            "spec": job.spec, "key": job.key}]
    if job.state == "running":
        out.append({"t": "dispatched", "jid": job.jid})
    if job.last_cid is not None:
        out.append({"t": "ckpt", "jid": job.jid, "cid": job.last_cid})
    if job.terminal:
        out.append({"t": "done", "jid": job.jid, "state": job.state,
                    "reason": job.reason, "digest": job.digest,
                    "ok": job.ok, "wall_s": job.wall_s,
                    "restarts": job.restarts})
    return out


class JobLedger:
    """Writer side of the WAL; one instance per daemon session.

    ``open()`` replays what previous sessions left behind, starts a
    fresh segment, and appends an ``open`` record; ``append`` is
    thread-safe and returns only after the record is fsync'd (group
    commit batches concurrent callers onto shared fsyncs); ``close``
    appends the clean-close marker. Appends after ``close`` are
    dropped, not errors — teardown races (a job finishing while the
    daemon exits) must not mask the real shutdown path.
    """

    def __init__(self, root: str, segment_max: int = 1024,
                 fsync: bool = True, compact_segments: int = 4,
                 _fsync_fn=None):
        self.root = root
        self.segment_max = max(1, segment_max)
        self.fsync = fsync
        self.compact_segments = compact_segments
        self._fsync_fn = _fsync_fn if _fsync_fn is not None else os.fsync
        os.makedirs(root, exist_ok=True)
        self._lock = threading.Lock()        # file handle + counters
        self._sync_lock = threading.Lock()   # group-commit section
        self._fh = None
        self._seg_index = 0
        self._seg_records = 0
        self._write_seq = 0
        self._synced_seq = 0
        # observability (read by stats()/the durability bench)
        self.appends = 0
        self.fsyncs = 0
        self.dropped_after_close = 0
        self.rotations = 0

    # -- lifecycle -----------------------------------------------------
    def open(self) -> LedgerReplay:
        """Replay prior sessions, maybe compact them, start a fresh
        segment, and record the session open. Returns the replay."""
        replay = replay_ledger(self.root)
        closed = _segment_paths(self.root)
        if len(closed) > self.compact_segments:
            self._compact_paths(closed, replay)
        with self._lock:
            if self._fh is not None:
                raise LedgerError("ledger is already open")
            paths = _segment_paths(self.root)
            self._seg_index = (_segment_index(paths[-1]) + 1) if paths else 0
            self._open_segment()
        self.append({"t": "open", "recovering": not replay.clean_close,
                     "session": replay.sessions + 1})
        return replay

    def close(self, drained: bool = True) -> None:
        """Append the clean-close marker and close the segment."""
        self.append({"t": "close", "drained": bool(drained)})
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                self._fsync_fn(self._fh.fileno())
                self.fsyncs += 1
                self._fh.close()
                self._fh = None

    # -- the write path ------------------------------------------------
    def append(self, record: dict) -> bool:
        """Write + fsync one record; False if the ledger is closed."""
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        with self._lock:
            if self._fh is None:
                self.dropped_after_close += 1
                return False
            if self._seg_records >= self.segment_max:
                self._rotate()
            self._fh.write(line + "\n")
            self._fh.flush()
            self._seg_records += 1
            self.appends += 1
            self._write_seq += 1
            my_seq = self._write_seq
        if self.fsync:
            self._commit(my_seq)
        return True

    def _commit(self, my_seq: int) -> None:
        """Group commit: fsync once for every line written so far; a
        caller whose line an earlier fsync already covered returns
        without touching the disk."""
        if self._synced_seq >= my_seq:
            return
        with self._sync_lock:
            if self._synced_seq >= my_seq:
                return   # a concurrent committer covered us meanwhile
            with self._lock:
                if self._fh is None:          # closed under us: close fsynced
                    return
                if self._synced_seq >= my_seq:
                    return   # a rotate sealed (and fsync'd) our segment
                target = self._write_seq
                # fsync a dup, not the raw fd: a concurrent append may
                # rotate, closing the segment's fd and recycling its
                # number for the next segment — the dup keeps the open
                # file description alive for the sync
                fd = os.dup(self._fh.fileno())
            try:
                self._fsync_fn(fd)
            finally:
                os.close(fd)
            self.fsyncs += 1
            with self._lock:
                self._synced_seq = max(self._synced_seq, target)

    def _open_segment(self) -> None:
        path = os.path.join(self.root, _SEGMENT_FMT.format(self._seg_index))
        self._fh = open(path, "a", encoding="utf-8")
        self._seg_records = 0

    def _rotate(self) -> None:
        """Called under ``_lock``: seal the current segment (fsync'd so
        nothing in a closed file is ever lost) and open the next."""
        self._fh.flush()
        self._fsync_fn(self._fh.fileno())
        self.fsyncs += 1
        self._fh.close()
        self._synced_seq = self._write_seq
        self._seg_index += 1
        self.rotations += 1
        self._open_segment()

    # -- compaction ----------------------------------------------------
    def compact(self) -> int:
        """Rewrite all *closed* segments into one synthetic segment;
        returns the number of records it holds. The live segment (the
        one this session appends to) is never touched."""
        with self._lock:
            live = (os.path.join(self.root,
                                 _SEGMENT_FMT.format(self._seg_index))
                    if self._fh is not None else None)
        closed = [p for p in _segment_paths(self.root) if p != live]
        if not closed:
            return 0
        replay = LedgerReplay()
        # the last closed segment's successor is this session's live
        # one, which started with an ``open`` — its tail may be torn
        _replay_segments(replay, closed, tail_open=True)
        return self._compact_paths(closed, replay)

    def _compact_paths(self, closed: list, replay: LedgerReplay) -> int:
        records = []
        for _ in range(replay.sessions):
            records.append({"t": "open", "compacted": True})
        jobs = sorted(replay.jobs.values(), key=lambda j: j.seq)
        for job in jobs:
            records.extend(_synthesize(job))
        if replay.clean_close:
            records.append({"t": "close", "compacted": True})
        tmp = os.path.join(self.root, "compact.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, separators=(",", ":"),
                                    sort_keys=True) + "\n")
            fh.flush()
            self._fsync_fn(fh.fileno())
        # atomic switch: the compacted file takes the oldest closed
        # segment's name, then the rest go. A crash between the rename
        # and an unlink leaves stale segments whose records re-apply
        # idempotently on the next replay.
        os.replace(tmp, closed[0])
        for path in closed[1:]:
            os.unlink(path)
        return len(records)

    # -- observability -------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "segments": len(_segment_paths(self.root)),
                "appends": self.appends,
                "fsyncs": self.fsyncs,
                "group_committed": self.appends - self.fsyncs,
                "rotations": self.rotations,
                "dropped_after_close": self.dropped_after_close,
            }
