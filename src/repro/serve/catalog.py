"""The program catalog: which paper programs are runnable as jobs.

One table maps the public matmul variant names to their navigational-IR
suite builders. Everything that needs to agree on "what can run on a
distributed fabric" reads this table — the serve daemon's admission
control, the submit client's error messages, ``repro variants --json``
and ``repro run --fabric`` — so a program added here becomes runnable
everywhere at once.

Admission also consults the static protocol model checker
(:mod:`repro.analysis.protocol_mc`): a submission whose (program, g)
pair is *provably* going to deadlock — e.g. the Figure 15 phased
program at g=3, whose genuine protocol deadlock the checker found — is
rejected with the verdict instead of burning a worker lease on a
timeout. Verdicts are cached per (program, g, window): the checker
explores the same state space for every job of that shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..errors import AdmissionError
from ..matmul import (build_fig11, build_fig13, build_fig15,
                      build_gentleman_ir)
from ..util.validation import random_matrix

__all__ = ["CatalogEntry", "IR_CATALOG", "REJECT_STATUSES",
           "program_names", "get_entry", "build_job_suite",
           "admission_verdict"]


@dataclass(frozen=True)
class CatalogEntry:
    """One runnable program: its builder plus catalog metadata."""

    program: str        # public name (== the matmul variant name)
    figure: str         # where the protocol is printed in the paper
    builder: object     # (g, a, b) -> IR2DSuite, registers programs
    description: str


IR_CATALOG = {
    "navp-2d-dsc": CatalogEntry(
        "navp-2d-dsc", "Figure 11", build_fig11,
        "2-D distribute-scatter-compute; row/column carriers with a "
        "one-shot EP event"),
    "navp-2d-pipeline": CatalogEntry(
        "navp-2d-pipeline", "Figure 13", build_fig13,
        "2-D pipelined; A/B carriers per k with the EP/EC slot "
        "handshake"),
    "navp-2d-phase": CatalogEntry(
        "navp-2d-phase", "Figure 15", build_fig15,
        "2-D phased, natural layout; rotated schedules stagger "
        "implicitly"),
    "mpi-gentleman": CatalogEntry(
        "mpi-gentleman", "Gentleman's algorithm", build_gentleman_ir,
        "Cannon-style shifts restated as navigational carriers"),
}

#: Model-checker statuses that prove a run cannot complete — admission
#: rejects these up front. INCONCLUSIVE/UNSUPPORTED admit: absence of a
#: proof is not a proof of absence, and the runtime still has its own
#: timeout.
REJECT_STATUSES = frozenset({"DEADLOCK", "CREDIT-DEADLOCK", "ORPHANS"})


def program_names() -> tuple:
    return tuple(sorted(IR_CATALOG))


def get_entry(program: str) -> CatalogEntry:
    entry = IR_CATALOG.get(program)
    if entry is None:
        raise AdmissionError(
            f"unknown program {program!r}; runnable programs: "
            f"{', '.join(program_names())}")
    return entry


def build_job_suite(program: str, g: int, seed: int, ab: int):
    """Build the IR suite plus its input matrices for one job shape.

    Deterministic in ``(program, g, seed, ab)``: A is
    ``random_matrix(g*ab, seed)`` and B uses ``seed + 1``, so a client
    can reproduce the inputs — and the expected digest — offline on
    the sim fabric (cross-fabric runs are bit-identical).
    Returns ``(suite, a, b)``.
    """
    entry = get_entry(program)
    if g < 2:
        raise AdmissionError(f"g must be >= 2 (got {g})")
    if ab < 1:
        raise AdmissionError(f"ab must be >= 1 (got {ab})")
    a = random_matrix(g * ab, seed)
    b = random_matrix(g * ab, seed + 1)
    return entry.builder(g, a, b), a, b


@lru_cache(maxsize=64)
def admission_verdict(program: str, g: int, window: int | None = 32,
                      deadline_s: float = 10.0):
    """Cached static verdict for one (program, g) job shape.

    Builds a throwaway suite (the matrices' *values* never enter the
    protocol abstraction; only the event structure does) and
    model-checks the injection closure under the serve credit window.
    Returns the :class:`~repro.analysis.protocol_mc.ModelCheckResult`;
    the caller decides what to do with non-``REJECT_STATUSES``.
    """
    from ..analysis.protocol_mc import model_check

    suite, _a, _b = build_job_suite(program, g, seed=0, ab=1)
    return model_check(
        [(suite.entry.name, (0, 0), {})],
        registry={p.name: p for p in suite.programs},
        initial_signals=suite.initial_signals,
        window=window,
        deadline_s=deadline_s,
    )
