"""The pool worker process: one warm WorkerCore host, many jobs.

A pool worker is the serve-mode sibling of the socket fabric's
``_sock_worker``: the same :class:`~repro.fabric.controller.WorkerCore`
execution engine behind the same wire.py frames, but the *process*
outlives any one job. What stays warm across jobs — the whole point of
the pool — is the fork, the TCP connection + handshake, the numpy
import, and the cache of registered IR programs, so a job lease costs
a few small frames instead of world construction.

Commands are job-tagged: a ``("job", jid, ...)`` header creates a
fresh core for that job (node variables, event tables, dedup set —
nothing leaks between jobs or tenants), and every subsequent
data-plane command carries the jid. A command for any other jid is
dropped — after a job ends (or this worker is re-leased following a
controller-side failure), stale frames of the old job cannot touch
the new one. ``("register", programs)`` is deliberately *not*
job-tagged: the program registry is the worker-lifetime cache.

All hops route through the daemon (like socket resilient mode): the
per-job journal and credit gate live with the job's controller, so a
SIGKILLed worker's replacement replays exactly this job's traffic.
Credit is paid per hop as it is handed to the core — a frame is only
consumed when the core is idle, so the daemon-side window still
bounds this worker's backlog.
"""

from __future__ import annotations

import queue
import threading

from ..fabric.controller import WorkerCore
from ..fabric.socket import _connect_with_backoff, _load_obj, _send_obj
from ..fabric.wire import (FRAME_CMD, FRAME_HEARTBEAT, FRAME_HELLO,
                           FRAME_REPORT, FrameSocket, WireError)

__all__ = ["pool_worker_main"]


def pool_worker_main(wid, ctl_addr, gen, heartbeat_s, backoff_seed):
    """Entry point of one pool worker process."""
    inbox: queue.Queue = queue.Queue()
    stop_evt = threading.Event()
    stats = {"jobs": 0, "frames_in": 0}

    ctl = FrameSocket(_connect_with_backoff(ctl_addr, backoff_seed))
    _send_obj(ctl, FRAME_HELLO, ("hello-worker", wid, None), gen=gen)

    def ctl_reader():
        while True:
            try:
                frame = ctl.recv()
            except WireError:
                inbox.put(("stop",))
                return
            if frame.kind != FRAME_CMD:
                continue
            stats["frames_in"] += 1
            inbox.put(_load_obj(frame))

    def heartbeat_loop():
        while not stop_evt.wait(heartbeat_s):
            try:
                ctl.send(FRAME_HEARTBEAT, b"", gen=gen)
            except WireError:
                return

    threading.Thread(target=ctl_reader, daemon=True).start()
    threading.Thread(target=heartbeat_loop, daemon=True).start()

    current = {"jid": None, "core": None, "host": None}

    def emit_report(msg):
        try:
            _send_obj(ctl, FRAME_REPORT, ("jr", current["jid"], msg),
                      gen=gen)
        except WireError:
            pass  # daemon gone; the main loop will see the stop

    def emit_hop(dst_host, payload):
        emit_report(("hop", current["host"], dst_host, payload))

    try:
        while True:
            core = current["core"]
            if core is not None and core.ready:
                core.step()
                continue
            cmd = inbox.get()
            op = cmd[0]
            if op == "stop":
                break
            if op == "register":
                # worker-lifetime program cache — the daemon tracks what
                # it shipped here and skips re-sending across jobs
                from ..navp import ir
                for program in cmd[1]:
                    ir.register_program(program, replace=True)
                continue
            if op == "job":
                _, jid, host, coords, host_of = cmd
                current["jid"] = jid
                current["host"] = host
                current["core"] = WorkerCore(
                    host, [tuple(c) for c in coords], dict(host_of),
                    emit_hop, emit_report, dedup=True)
                stats["jobs"] += 1
                continue
            # everything below is job-tagged: (op, jid, ...)
            jid = cmd[1]
            if jid != current["jid"] or current["core"] is None:
                continue  # stale frame of a finished/abandoned job
            core = current["core"]
            if op == "endjob":
                current["jid"] = None
                current["core"] = None
                current["host"] = None
            elif op in ("run", "runs"):
                tasks = [cmd[2]] if op == "run" else cmd[2]
                for task in tasks:
                    emit_report(("credit", current["host"]))
                    core.handle(("run", task))
            elif op == "load":
                core.handle(("load", tuple(cmd[2]), cmd[3]))
            elif op == "signal0":
                core.handle(("signal0", cmd[2]))
            elif op == "ckpt":
                core.handle(("ckpt", cmd[2]))
            elif op == "restore":
                core.handle(("restore", cmd[2]))
            elif op == "collect":
                core.handle(("collect",))
    except BaseException as exc:  # noqa: BLE001 - forwarded to daemon
        try:
            _send_obj(ctl, FRAME_REPORT,
                      ("jr", current["jid"],
                       ("error", current["host"],
                        f"{type(exc).__name__}: {exc}")),
                      gen=gen)
        except WireError:
            pass
    finally:
        stop_evt.set()
        ctl.close()
