"""The serve daemon: listener, dispatcher, failure monitor, verbs.

One TCP listener serves both populations: pool workers connect with a
``("hello-worker", wid, _)`` frame and stream heartbeats + job
reports; clients connect with ``("hello-client", _, _)`` and speak a
request/response protocol of CMD frames answered by REPORT frames —
``("ok", payload)`` or ``("err", reason)``. Both ride the same
:mod:`repro.fabric.wire` VERSION-2 multi-buffer framing as every hop
in the system.

Threads, and what each owns:

* **accept loop** — hands each connection to a handler thread;
* **worker handlers** — heartbeats to the pool's detectors, job
  reports routed to the owning :class:`~repro.serve.scheduler.JobRun`,
  EOF turned into a death event;
* **client handlers** — one per connection (a blocking ``wait`` verb
  must not stall other clients);
* **dispatcher** — admission queue -> pool leases, woken by submits,
  completions, respawns and resizes;
* **monitor** — phi-accrual suspicion + EOF events -> pool respawn,
  then the leasing job's recovery (or its failure, if the respawn
  budget is spent).

Admission control answers at submit time (see
:class:`~repro.serve.queue.JobQueue` for the bounds, and
:func:`~repro.serve.catalog.admission_verdict` for the static
protocol-deadlock gate).
"""

from __future__ import annotations

import os
import queue as queue_mod
import socket as socket_mod
import threading
import time

from ..errors import AdmissionError, ServeError
from ..fabric.factory import fabric_capabilities
from ..fabric.socket import _load_obj, _send_obj
from ..fabric.wire import (FRAME_CMD, FRAME_HEARTBEAT, FRAME_HELLO,
                           FRAME_REPORT, FrameSocket, WireError)
from ..resilience.checkpoint import DiskStore, MemoryStore
from .catalog import REJECT_STATUSES, admission_verdict, program_names
from .jobs import JobRecord, JobSpec, STATE_FAILED, STATE_RUNNING
from .ledger import JobLedger, LedgerReplay
from .pool import WorkerPool
from .queue import JobQueue
from .scheduler import JobRun

__all__ = ["ServeService"]

#: Capabilities the pool substrate must offer for serve mode at all,
#: plus the ones specific features lean on. The pool runs on the
#: socket transport, so this always holds — but the query keeps the
#: dependency honest and is the same check ``repro run`` uses.
_REQUIRED_CAPS = frozenset({"ir-inject", "real-transport", "serve-pool",
                            "checkpoint", "respawn"})


class ServeService:
    """A long-lived multi-tenant job service over a warm worker pool."""

    def __init__(self, pool_size: int = 4, port: int = 0,
                 window: int = 32, coalesce: int = 8,
                 heartbeat_s: float = 0.025, phi_threshold: float = 12.0,
                 max_depth: int = 64, tenant_cap: int = 8,
                 checkpoint_every: int | None = 8, max_restarts: int = 2,
                 job_timeout_s: float = 60.0, chaos: bool = False,
                 mc_admission: bool = True, state_dir: str | None = None):
        missing = _REQUIRED_CAPS - fabric_capabilities("socket")
        if missing:  # pragma: no cover - the table satisfies this
            raise ServeError(
                f"socket fabric lacks capabilities required by serve: "
                f"{', '.join(sorted(missing))}")
        self.pool_size = pool_size
        self.port = port
        self.window = window
        self.coalesce = min(coalesce, window)
        self.heartbeat_s = heartbeat_s
        self.phi_threshold = phi_threshold
        self.checkpoint_every = checkpoint_every
        self.max_restarts = max_restarts
        self.job_timeout_s = job_timeout_s
        self.chaos = chaos
        self.mc_admission = mc_admission
        self.state_dir = state_dir

        # durable control plane (wired in start() when state_dir is set)
        self.ledger: JobLedger | None = None
        self.store = MemoryStore(copy_payloads=False)
        self.idem: dict[str, str] = {}   # idempotency key -> jid
        self.recovery_summary = {"terminal": 0, "requeued": 0,
                                 "resumed": 0, "unclean": False,
                                 "sessions": 0}

        self.pool: WorkerPool | None = None
        self.queue = JobQueue(max_depth=max_depth, tenant_cap=tenant_cap)
        self.jobs: dict[str, JobRecord] = {}
        self.runs: dict[str, JobRun] = {}
        self.running_of: dict[str, int] = {}   # tenant -> running count
        self.rejections: dict[str, int] = {}   # reason -> count (bounded)
        self.completed = 0
        self.failed = 0

        self._lock = threading.RLock()
        self._dispatch_evt = threading.Event()
        self._deaths: queue_mod.Queue = queue_mod.Queue()
        self._stop_evt = threading.Event()
        self._stopped_evt = threading.Event()
        self._stopping = False
        self._seq = 0
        self._t0 = time.monotonic()
        self._listener = None
        self.addr = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> tuple:
        """Bind, spawn the pool, start the service threads; returns the
        daemon address. With a ``state_dir``, the ledger is replayed
        and every surviving job recovered *before* the listener binds,
        so no client can observe a half-recovered daemon."""
        if self.state_dir is not None:
            os.makedirs(self.state_dir, exist_ok=True)
            self.store = DiskStore(os.path.join(self.state_dir, "ckpt"))
            self.ledger = JobLedger(os.path.join(self.state_dir, "wal"))
            self._recover(self.ledger.open())
        self._listener = socket_mod.socket(socket_mod.AF_INET,
                                           socket_mod.SOCK_STREAM)
        # a restarted daemon must be able to rebind its old port while
        # the previous session's accepted connections sit in TIME_WAIT
        self._listener.setsockopt(socket_mod.SOL_SOCKET,
                                  socket_mod.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", self.port))
        self._listener.listen(64)
        self.addr = self._listener.getsockname()
        threading.Thread(target=self._accept_loop, daemon=True,
                         name="serve-accept").start()
        self.pool = WorkerPool(self.addr, heartbeat_s=self.heartbeat_s,
                               phi_threshold=self.phi_threshold)
        try:
            for _ in range(self.pool_size):
                self.pool.spawn()
        except BaseException:
            # a half-built pool must not leak processes or the port
            self.pool.stop_all()
            self._listener.close()
            if self.ledger is not None:
                self.ledger.close(drained=False)
            raise
        threading.Thread(target=self._dispatch_loop, daemon=True,
                         name="serve-dispatch").start()
        threading.Thread(target=self._monitor_loop, daemon=True,
                         name="serve-monitor").start()
        return self.addr

    def serve_forever(self) -> None:
        """Block until a ``shutdown`` verb (or :meth:`shutdown`)."""
        self._stopped_evt.wait()

    def _recover(self, replay: LedgerReplay) -> None:
        """Fold a ledger replay into live daemon state (boot only, no
        lock needed: nothing else runs yet). Terminal jobs become
        answerable history; the rest go back on the queue — jobs a
        previous session had dispatched are flagged ``resumed`` so
        dispatch hands them their persisted cut bundle."""
        summary = self.recovery_summary
        summary["unclean"] = not replay.clean_close
        summary["sessions"] = replay.sessions
        requeue = []
        for job in sorted(replay.jobs.values(), key=lambda j: j.seq):
            spec = JobSpec.from_dict(dict(job.spec))
            record = JobRecord(jid=job.jid, spec=spec, seq=job.seq,
                               submitted_s=self._now())
            if job.key is not None:
                self.idem[job.key] = job.jid
            if job.terminal:
                record.digest = job.digest
                record.ok = job.ok
                record.wall_s = job.wall_s
                record.restarts = job.restarts
                record.finish(job.state, job.reason)
                if job.state == STATE_FAILED:
                    self.failed += 1
                else:
                    self.completed += 1
                summary["terminal"] += 1
            else:
                record.resumed = job.state == STATE_RUNNING
                requeue.append(record)
                summary["resumed" if record.resumed else "requeued"] += 1
            self.jobs[record.jid] = record
        self.queue.restore(requeue)
        if replay.max_seq >= 0:
            self._seq = replay.max_seq + 1

    def shutdown(self, drain: bool = True,
                 preserve_pending: bool | None = None) -> dict:
        """Stop admitting, optionally drain running jobs, then reap the
        pool, close the listener, and cleanly close the ledger.

        A durable daemon (``state_dir`` set) *preserves* pending jobs
        by default instead of cancelling them — they are already in the
        ledger, so the next session re-admits them; cancelling would
        turn a routine restart into failed jobs. A non-durable daemon
        keeps the old behaviour (pending jobs fail with "cancelled at
        shutdown" — there is nowhere for them to survive).
        """
        preserve = (self.state_dir is not None
                    if preserve_pending is None else preserve_pending)
        with self._lock:
            if self._stopping:
                self._stopped_evt.wait()
                return {"cancelled": 0, "drained": 0, "preserved": 0}
            self._stopping = True
            cancelled = []
            preserved = len(self.queue) if preserve else 0
            if not preserve:
                cancelled = self.queue.cancel_all()
                for rec in cancelled:
                    rec.finish(STATE_FAILED, "cancelled at shutdown")
                    self.failed += 1
            runs = list(self.runs.values())
        drained = 0
        if drain:
            for run in runs:
                run.join(timeout=self.job_timeout_s + 10.0)
                drained += 1
        self._stop_evt.set()
        self._dispatch_evt.set()
        if self.pool is not None:
            self.pool.stop_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        if self.ledger is not None:
            self.ledger.close(drained=drain)
        self._stopped_evt.set()
        return {"cancelled": len(cancelled), "drained": drained,
                "preserved": preserved}

    # -- the control plane (also used in-process by tests/benchmarks) --
    def _dedup(self, spec: JobSpec) -> dict | None:
        """Under ``_lock``: the exactly-once answer for a replayed
        idempotency key, or None for a fresh submission. Key reuse with
        a *different* spec is a client bug, rejected loudly."""
        if spec.key is None or spec.key not in self.idem:
            return None
        prior = self.jobs[self.idem[spec.key]]
        if prior.spec.to_dict() != spec.to_dict():
            raise AdmissionError(
                f"idempotency key {spec.key!r} was already used with a "
                f"different spec (job {prior.jid})")
        return {"job": prior.jid, "state": prior.state, "deduped": True}

    def submit(self, raw_spec) -> dict:
        """Admit one submission or raise :class:`AdmissionError`.

        Exactly-once: a spec carrying an idempotency ``key`` the daemon
        has seen — in this session or replayed from the ledger of a
        previous one — returns the original jid instead of admitting a
        duplicate, so clients can blindly resubmit after an ambiguous
        failure.
        """
        try:
            spec = JobSpec.from_dict(raw_spec)
            with self._lock:
                deduped = self._dedup(spec)
                if deduped is not None:
                    return deduped
            if spec.program not in program_names():
                raise AdmissionError(
                    f"unknown program {spec.program!r}; runnable "
                    f"programs: {', '.join(program_names())}")
            with self._lock:
                pool_total = len(self.pool.workers)
            if spec.workers > pool_total:
                raise AdmissionError(
                    f"job wants {spec.workers} worker(s) but the pool "
                    f"has {pool_total}; resize the pool or narrow the "
                    f"lease")
            if self.mc_admission:
                verdict = admission_verdict(spec.program, spec.g,
                                            self.window)
                if verdict.status in REJECT_STATUSES:
                    # first line only: the full counterexample schedule
                    # is hundreds of steps (repro lint shows it all)
                    detail = (verdict.detail or verdict.summary()
                              ).splitlines()[0]
                    raise AdmissionError(
                        f"statically rejected: {verdict.status} — "
                        f"{detail} (run the protocol model checker "
                        f"for the full schedule)")
            with self._lock:
                if self._stopping:
                    raise AdmissionError("daemon is shutting down")
                deduped = self._dedup(spec)   # raced a same-key submit
                if deduped is not None:
                    return deduped
                record = JobRecord(jid=f"j{self._seq}", spec=spec,
                                   seq=self._seq,
                                   submitted_s=self._now())
                reason = self.queue.admit_reason(record, self.running_of)
                if reason is not None:
                    raise AdmissionError(reason)
                self._seq += 1
                self.jobs[record.jid] = record
                if spec.key is not None:
                    self.idem[spec.key] = record.jid
                # queued now so depth/tenant accounting is exact, but
                # invisible to the dispatcher until the admitted record
                # is durable — a ``dispatched`` record must never reach
                # the ledger ahead of its ``admitted``
                record.durable = self.ledger is None
                self.queue.push(record)
        except AdmissionError as exc:
            with self._lock:
                if len(self.rejections) < 64:
                    key = str(exc)
                    self.rejections[key] = self.rejections.get(key, 0) + 1
            raise
        # write-ahead: durable before the dispatcher may run the job
        # and before the client hears the jid, so a crash can neither
        # forget an acknowledged job nor replay a dispatch of an
        # unrecorded one
        self._ledger_append({"t": "admitted", "jid": record.jid,
                             "seq": record.seq, "spec": spec.to_dict(),
                             "key": spec.key})
        with self._lock:
            record.durable = True
        self._dispatch_evt.set()
        return {"job": record.jid, "state": record.state}

    def _ledger_append(self, entry: dict) -> None:
        """Best-effort durable append: a ledger-less daemon and a disk
        hiccup both degrade to in-memory-only state rather than taking
        the control plane down mid-request."""
        if self.ledger is not None:
            try:
                self.ledger.append(entry)
            except OSError:  # pragma: no cover - disk failure path
                pass

    def status(self, jid: str | None = None) -> dict:
        if jid is not None:
            with self._lock:
                record = self.jobs.get(jid)
            if record is None:
                raise ServeError(f"unknown job {jid!r}")
            return record.to_dict()
        with self._lock:
            states: dict = {}
            for rec in self.jobs.values():
                states[rec.state] = states.get(rec.state, 0) + 1
            out = {
                "uptime_s": round(self._now(), 3),
                "pool": self.pool.snapshot(),
                "queue": self.queue.snapshot(),
                "jobs": states,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": sum(self.rejections.values()),
                "tenants_running": dict(self.running_of),
            }
            if self.state_dir is not None:
                out["durability"] = {
                    "state_dir": self.state_dir,
                    "recovered": dict(self.recovery_summary),
                    "ledger": self.ledger.stats(),
                }
            return out

    def wait_job(self, jid: str, timeout: float = 60.0) -> dict:
        with self._lock:
            record = self.jobs.get(jid)
        if record is None:
            raise ServeError(f"unknown job {jid!r}")
        record.done.wait(timeout)
        out = record.to_dict()
        if not record.done.is_set():
            out["timed_out"] = True
        return out

    def resize(self, n: int) -> int:
        size = self.pool.resize(n)
        self._dispatch_evt.set()
        return size

    def kill_worker(self, wid: int | None = None) -> int:
        """Chaos verb: SIGKILL one (preferably leased) worker."""
        if not self.chaos:
            raise ServeError("chaos verbs are disabled; start the "
                             "daemon with chaos enabled")
        with self.pool.lock:
            candidates = sorted(
                self.pool.workers.values(),
                key=lambda w: (w.lease is None, w.wid))
            if wid is not None:
                candidates = [w for w in candidates if w.wid == wid]
            if not candidates:
                raise ServeError(f"no such worker to kill: {wid!r}")
            target = candidates[0].wid
        if not self.pool.kill(target):
            raise ServeError(f"worker {target} is not running")
        return target

    # -- dispatcher ----------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stop_evt.is_set():
            self._dispatch_evt.wait(timeout=0.1)
            self._dispatch_evt.clear()
            while True:
                with self._lock:
                    if self._stopping:
                        break
                    record = self.queue.take(self.pool.free_count(),
                                             self.running_of)
                    if record is None:
                        break
                    wids = self.pool.lease(record.spec.workers,
                                           record.jid)
                    if wids is None:   # raced a death; requeue
                        self.queue.push(record)
                        break
                    record.state = STATE_RUNNING
                    record.started_s = self._now()
                    tenant = record.spec.tenant
                    self.running_of[tenant] = (
                        self.running_of.get(tenant, 0) + 1)
                    run = JobRun(self, record, wids, store=self.store)
                    self.runs[record.jid] = run
                if record.resumed:
                    # a previous daemon session had this job in flight;
                    # hand over its last fully-committed cut (None means
                    # no commit landed — the run restarts from scratch,
                    # deterministically reproducing the same digest)
                    run.bundle = self.store.try_load(f"cut:{record.jid}")
                self._ledger_append({"t": "dispatched",
                                     "jid": record.jid})
                run.start()

    def on_job_done(self, run: JobRun, recycle: bool = False) -> None:
        """Called by a finishing JobRun (both outcomes)."""
        record = run.record
        if recycle:
            # a failed job's workers may hold arbitrary mid-protocol
            # state (or be wedged executing); replace the processes
            # rather than trust ``endjob`` hygiene
            for wid in run.wids:
                try:
                    self.pool.respawn(wid)
                except ServeError:
                    pass  # slot stays dead; resize can refill it
        with self._lock:
            self.pool.release(run.wids)
            self.runs.pop(record.jid, None)
            tenant = record.spec.tenant
            left = self.running_of.get(tenant, 1) - 1
            if left > 0:
                self.running_of[tenant] = left
            else:
                self.running_of.pop(tenant, None)
            if record.state == STATE_FAILED:
                self.failed += 1
            else:
                self.completed += 1
        self._ledger_append({
            "t": "done", "jid": record.jid, "state": record.state,
            "reason": record.reason, "digest": record.digest,
            "ok": record.ok, "wall_s": record.wall_s,
            "restarts": record.restarts})
        self._dispatch_evt.set()

    def on_job_checkpoint(self, record: JobRecord, cid: int) -> None:
        """A JobRun fully committed checkpoint ``cid`` (every host
        answered the marker and the resume bundle is on disk); make the
        fact durable so recovery knows a bundle exists."""
        self._ledger_append({"t": "ckpt", "jid": record.jid, "cid": cid})

    # -- failure monitor -----------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop_evt.is_set():
            dead: dict = {}
            try:
                kind, wid, gen = self._deaths.get(
                    timeout=max(self.heartbeat_s * 4, 0.05))
                if kind == "gone":
                    dead[wid] = gen
            except queue_mod.Empty:
                pass
            for wid, _phi in self.pool.suspects():
                dead.setdefault(wid, self.pool.current_gen(wid))
            for wid, gen in dead.items():
                if self._stop_evt.is_set():
                    return
                if self.pool.current_gen(wid) != gen:
                    continue   # already replaced (recycle or races)
                jid = self.pool.lease_of(wid)
                try:
                    self.pool.respawn(wid)
                except ServeError as exc:
                    if jid is not None:
                        run = self.runs.get(jid)
                        if run is not None:
                            run.post(("jr", "error",
                                      ("error", wid, str(exc))))
                    continue
                if jid is not None:
                    run = self.runs.get(jid)
                    if run is not None:
                        run.post(("respawned", wid))
                self._dispatch_evt.set()

    # -- connections ---------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return   # listener closed: shutdown
            threading.Thread(target=self._serve_conn,
                             args=(FrameSocket(conn),),
                             daemon=True).start()

    def _serve_conn(self, fs: FrameSocket) -> None:
        try:
            hello = fs.recv()
        except WireError:
            fs.close()
            return
        if hello.kind != FRAME_HELLO:
            fs.close()
            return
        tag = _load_obj(hello)
        if tag[0] == "hello-worker":
            self._serve_worker(fs, tag[1], hello.gen)
        elif tag[0] == "hello-client":
            self._serve_client(fs)
        else:
            fs.close()

    def _serve_worker(self, fs: FrameSocket, wid: int, gen: int) -> None:
        if not self.pool.attach(wid, gen, fs):
            fs.close()   # stale generation: a replaced worker's socket
            return
        while True:
            try:
                frame = fs.recv()
            except WireError:
                self._deaths.put(("gone", wid, gen))
                return
            if frame.gen != self.pool.current_gen(wid):
                self.pool.stale_frames += 1
                continue
            if frame.kind == FRAME_HEARTBEAT:
                self.pool.beat(wid, gen)
            elif frame.kind == FRAME_REPORT:
                _tag, jid, msg = _load_obj(frame)
                self._route(wid, jid, msg)

    def _route(self, wid: int, jid, msg) -> None:
        with self._lock:
            run = self.runs.get(jid) if jid is not None else None
        if run is None:
            return   # report for a finished/failed job: drop
        if wid not in run.wids:
            return   # lease moved on; a zombie's late report
        run.post(("jr", msg[0], msg))

    # -- the client protocol -------------------------------------------
    def _serve_client(self, fs: FrameSocket) -> None:
        while True:
            try:
                frame = fs.recv()
            except WireError:
                fs.close()
                return
            if frame.kind != FRAME_CMD:
                continue
            # errors travel structured — ("err", code, reason) — so the
            # client classifies by code, not by sniffing reason strings
            try:
                reply = ("ok", self._handle(_load_obj(frame)))
            except AdmissionError as exc:
                reply = ("err", "admission", str(exc))
            except ServeError as exc:
                reply = ("err", "serve", str(exc))
            except Exception as exc:  # noqa: BLE001 - protocol-level
                reply = ("err", "internal", f"{type(exc).__name__}: {exc}")
            try:
                _send_obj(fs, FRAME_REPORT, reply)
            except WireError:
                fs.close()
                return

    def _handle(self, req):
        if not isinstance(req, tuple) or not req:
            raise ServeError("malformed request")
        verb = req[0]
        if verb == "submit":
            return self.submit(req[1])
        if verb == "status":
            return self.status(req[1])
        if verb == "wait":
            return self.wait_job(req[1], req[2])
        if verb == "programs":
            return list(program_names())
        if verb == "resize":
            return self.resize(int(req[1]))
        if verb == "kill-worker":
            return self.kill_worker(req[1])
        if verb == "shutdown":
            return self.shutdown(drain=bool(req[1]))
        raise ServeError(f"unknown verb {verb!r}")

    def _now(self) -> float:
        return time.monotonic() - self._t0
