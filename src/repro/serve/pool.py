"""Controller-side worker pool: spawn, lease, respawn, resize, reap.

The pool owns the worker *processes* and their connections; it does
not know what a job is beyond the opaque lease tag. Failure policy is
split in two, mirroring who owns what:

* the **pool** always replaces a dead worker (a fresh process, a
  bumped connection generation so the zombie's socket cannot deliver,
  an empty shipped-programs cache) — the pool's size is a service
  invariant, independent of any job's fate;
* the **job** leasing the worker decides, via its own
  :class:`~repro.fabric.controller.Supervisor` respawn budget, whether
  *it* recovers onto the replacement or fails.

Elasticity is the same machinery: ``resize`` grows by spawning and
shrinks by stopping idle workers (leased workers finish their job
first), mid-stream, while other jobs keep running.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal as signal_mod
import threading
import time

from ..errors import ServeError
from ..fabric.controller import reap_workers
from ..fabric.socket import PhiAccrualDetector, _send_obj
from ..fabric.wire import FRAME_CMD, WireError

__all__ = ["PoolWorker", "WorkerPool"]


class PoolWorker:
    """Book-keeping for one pool worker slot."""

    __slots__ = ("wid", "gen", "proc", "conn", "detector", "lease",
                 "shipped", "respawns")

    def __init__(self, wid: int):
        self.wid = wid
        self.gen = 0
        self.proc = None
        self.conn = None            # FrameSocket once attached
        self.detector = None        # PhiAccrualDetector once attached
        self.lease = None           # jid while leased
        self.shipped: set = set()   # program names cached in the worker
        self.respawns = 0


class WorkerPool:
    def __init__(self, ctl_addr, heartbeat_s: float = 0.025,
                 phi_threshold: float = 12.0, backoff_seed: int = 0,
                 hello_timeout_s: float = 20.0):
        self._ctx = mp.get_context("fork")
        self.ctl_addr = ctl_addr
        self.heartbeat_s = heartbeat_s
        self.phi_threshold = phi_threshold
        self.backoff_seed = backoff_seed
        self.hello_timeout_s = hello_timeout_s
        self.workers: dict[int, PoolWorker] = {}
        self.lock = threading.RLock()
        self._next_wid = 0
        self._hello_evts: dict = {}   # (wid, gen) -> Event
        self.stale_frames = 0
        self.total_respawns = 0

    # -- spawning ------------------------------------------------------
    def spawn(self) -> int:
        """Fork one new worker slot; blocks until it says hello."""
        with self.lock:
            wid = self._next_wid
            self._next_wid += 1
            w = self.workers[wid] = PoolWorker(wid)
        self._start(w)
        return wid

    def _start(self, w: PoolWorker) -> None:
        from .worker import pool_worker_main
        evt = threading.Event()
        self._hello_evts[(w.wid, w.gen)] = evt
        proc = self._ctx.Process(
            target=pool_worker_main,
            args=(w.wid, self.ctl_addr, w.gen, self.heartbeat_s,
                  self.backoff_seed * 31 + w.wid),
            daemon=True, name=f"poolworker{w.wid}",
        )
        proc.start()
        w.proc = proc
        if not evt.wait(timeout=self.hello_timeout_s):
            raise ServeError(
                f"pool worker {w.wid} did not say hello within "
                f"{self.hello_timeout_s:.0f}s")

    def attach(self, wid: int, gen: int, fs) -> bool:
        """Wire an inbound hello'd connection to its slot; False means
        the connection is stale (a replaced worker's socket)."""
        with self.lock:
            w = self.workers.get(wid)
            if w is None or gen != w.gen:
                self.stale_frames += 1
                return False
            w.conn = fs
            w.detector = PhiAccrualDetector(time.monotonic(),
                                            self.heartbeat_s)
            evt = self._hello_evts.pop((wid, gen), None)
        if evt is not None:
            evt.set()
        return True

    # -- frames --------------------------------------------------------
    def send(self, wid: int, cmd) -> int:
        """Frame one command to a worker; 0 if it is gone (failure
        handling belongs to the detector + journal, not the sender)."""
        with self.lock:
            w = self.workers.get(wid)
            fs, gen = (w.conn, w.gen) if w is not None else (None, 0)
        if fs is None:
            return 0
        try:
            return _send_obj(fs, FRAME_CMD, cmd, gen=gen)
        except WireError:
            return 0

    def ship(self, wid: int, programs) -> None:
        """Register programs on a worker, skipping its warm cache."""
        with self.lock:
            w = self.workers.get(wid)
            if w is None:
                return
            new = [p for p in programs if p.name not in w.shipped]
            w.shipped.update(p.name for p in new)
        if new:
            self.send(wid, ("register", new))

    def beat(self, wid: int, gen: int) -> None:
        with self.lock:
            w = self.workers.get(wid)
            if w is None or gen != w.gen or w.detector is None:
                return
            w.detector.beat(time.monotonic())

    def current_gen(self, wid: int) -> int | None:
        with self.lock:
            w = self.workers.get(wid)
            return None if w is None else w.gen

    # -- failure handling ----------------------------------------------
    def suspects(self) -> list:
        """(wid, phi) for attached workers past the phi threshold."""
        now = time.monotonic()
        out = []
        with self.lock:
            for w in self.workers.values():
                if w.detector is None:
                    continue
                phi = w.detector.phi(now)
                if phi > self.phi_threshold:
                    out.append((w.wid, phi))
        return out

    def respawn(self, wid: int) -> None:
        """Replace a worker process in place (same slot, fresh gen).

        The lease tag survives — the leasing job decides separately
        whether to recover onto the replacement or fail.
        """
        with self.lock:
            w = self.workers.get(wid)
            if w is None:
                return
            w.gen += 1          # the zombie's frames are stale from here
            if w.conn is not None:
                w.conn.close()
                w.conn = None
            w.detector = None
            w.shipped.clear()   # a fresh process has an empty registry
            old = w.proc
            w.respawns += 1
            self.total_respawns += 1
        if old is not None:
            if old.is_alive():
                old.terminate()
            reap_workers([old], grace_s=2.0)
        self._start(w)

    def kill(self, wid: int) -> bool:
        """SIGKILL a worker process (chaos injection — a *real* crash,
        detected by heartbeat loss like any other)."""
        with self.lock:
            w = self.workers.get(wid)
            proc = w.proc if w is not None else None
        if proc is None or proc.pid is None or not proc.is_alive():
            return False
        os.kill(proc.pid, signal_mod.SIGKILL)
        return True

    # -- leasing -------------------------------------------------------
    def free_count(self) -> int:
        with self.lock:
            return sum(1 for w in self.workers.values()
                       if w.lease is None and w.conn is not None)

    def lease(self, n: int, jid: str) -> list | None:
        with self.lock:
            free = sorted(w.wid for w in self.workers.values()
                          if w.lease is None and w.conn is not None)
            if len(free) < n:
                return None
            wids = free[:n]
            for wid in wids:
                self.workers[wid].lease = jid
            return wids

    def release(self, wids) -> None:
        with self.lock:
            for wid in wids:
                w = self.workers.get(wid)
                if w is not None:
                    w.lease = None

    def lease_of(self, wid: int) -> str | None:
        with self.lock:
            w = self.workers.get(wid)
            return None if w is None else w.lease

    # -- elasticity ----------------------------------------------------
    def resize(self, n: int) -> int:
        """Grow by spawning, shrink by retiring idle workers; returns
        the resulting pool size. Leased workers are never retired —
        a shrink below the leased count settles as leases end and
        ``resize`` is called again (the CLI reports the actual size)."""
        if n < 1:
            raise ServeError(f"pool size must be >= 1 (got {n})")
        while len(self.workers) < n:
            self.spawn()
        with self.lock:
            idle = sorted((w.wid for w in self.workers.values()
                           if w.lease is None),
                          reverse=True)
            excess = len(self.workers) - n
            retire = [self.workers[wid] for wid in idle[:excess]]
            for w in retire:
                del self.workers[w.wid]
        self._stop_workers(retire)
        return len(self.workers)

    def _stop_workers(self, workers) -> None:
        for w in workers:
            if w.conn is not None:
                try:
                    _send_obj(w.conn, FRAME_CMD, ("stop",), gen=w.gen)
                except WireError:
                    pass
        reap_workers([w.proc for w in workers])
        for w in workers:
            if w.conn is not None:
                w.conn.close()
                w.conn = None

    def stop_all(self) -> None:
        with self.lock:
            workers = list(self.workers.values())
            self.workers.clear()
        self._stop_workers(workers)

    def snapshot(self) -> dict:
        with self.lock:
            return {
                "size": len(self.workers),
                "free": sum(1 for w in self.workers.values()
                            if w.lease is None and w.conn is not None),
                "leases": {w.wid: w.lease
                           for w in self.workers.values()
                           if w.lease is not None},
                "respawns": self.total_respawns,
                "stale_frames": self.stale_frames,
            }
