"""Admission queue: bounded FIFO with priorities and tenant fairness.

Admission control answers *at submit time* with a reason string —
the queue is depth-bounded and each tenant has an in-flight cap
(pending + running), so one chatty tenant can neither grow the daemon
without bound nor starve everyone else by flooding the queue.

Dispatch order among admitted jobs:

1. highest ``priority`` first;
2. among those, the tenant with the fewest *running* jobs (fairness:
   a backlogged tenant's tenth job does not beat another tenant's
   first);
3. within a tenant, FIFO by admission sequence.

A job whose lease width exceeds the workers currently free is skipped
— a smaller job behind it may dispatch first (backfilling), which
keeps the pool busy at the cost of strict FIFO across widths.

The queue is not thread-safe by itself; the service serializes access
under its own lock.
"""

from __future__ import annotations

from .jobs import JobRecord

__all__ = ["JobQueue"]


class JobQueue:
    def __init__(self, max_depth: int = 64, tenant_cap: int = 8):
        self.max_depth = max_depth
        self.tenant_cap = tenant_cap
        self._pending: list[JobRecord] = []

    def __len__(self) -> int:
        return len(self._pending)

    def pending_of(self, tenant: str) -> int:
        return sum(1 for r in self._pending if r.spec.tenant == tenant)

    # -- admission -----------------------------------------------------
    def admit_reason(self, record: JobRecord, running_of: dict) -> str | None:
        """Why this record may NOT be queued, or None to admit.

        ``running_of`` maps tenant -> currently running job count.
        """
        if len(self._pending) >= self.max_depth:
            return (f"queue full ({self.max_depth} job(s) pending); "
                    f"retry later")
        tenant = record.spec.tenant
        in_flight = self.pending_of(tenant) + running_of.get(tenant, 0)
        if in_flight >= self.tenant_cap:
            return (f"tenant {tenant!r} at its in-flight cap "
                    f"({self.tenant_cap})")
        return None

    def push(self, record: JobRecord) -> None:
        self._pending.append(record)

    def restore(self, records) -> None:
        """Boot-time re-admission of replayed jobs, ordered by their
        original admission sequence. Bypasses admit_reason: these jobs
        already passed admission in a previous daemon session."""
        self._pending.extend(sorted(records, key=lambda r: r.seq))

    # -- dispatch ------------------------------------------------------
    def take(self, free_workers: int, running_of: dict) -> JobRecord | None:
        """Pop the next record to dispatch, or None if nothing fits.

        A record still waiting on its write-ahead ``admitted`` ledger
        append (``durable`` False) counts toward depth and tenant caps
        but is never handed out — dispatching it could put a
        ``dispatched`` record on disk before its ``admitted``.
        """
        fits = [r for r in self._pending
                if r.durable and r.spec.workers <= free_workers]
        if not fits:
            return None
        top = max(r.spec.priority for r in fits)
        contenders = [r for r in fits if r.spec.priority == top]
        pick = min(contenders,
                   key=lambda r: (running_of.get(r.spec.tenant, 0), r.seq))
        self._pending.remove(pick)
        return pick

    def cancel_all(self) -> list[JobRecord]:
        """Drain every pending record (daemon shutdown)."""
        drained, self._pending = self._pending, []
        return drained

    def snapshot(self) -> dict:
        by_tenant: dict = {}
        for r in self._pending:
            by_tenant[r.spec.tenant] = by_tenant.get(r.spec.tenant, 0) + 1
        return {"depth": len(self._pending), "max_depth": self.max_depth,
                "tenant_cap": self.tenant_cap, "by_tenant": by_tenant}
