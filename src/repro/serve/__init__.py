"""``repro serve`` — a persistent multi-tenant job service.

The distributed fabrics pay their whole world-construction cost on
every run: fork the workers, bind the sockets, say hello, ship the
programs. This package amortizes that cost the way a real cluster
does — a long-lived daemon keeps a *warm pool* of socket-fabric
worker processes and leases them to submitted jobs:

:mod:`~repro.serve.catalog`
    The program catalog — one source of truth for which paper programs
    are runnable as jobs, shared by the daemon's admission control,
    the submit client, ``repro variants --json`` and ``repro run``.

:mod:`~repro.serve.jobs` / :mod:`~repro.serve.queue`
    The job model (spec, record, lifecycle states) and the bounded
    FIFO-with-priorities admission queue with per-tenant caps.

:mod:`~repro.serve.worker` / :mod:`~repro.serve.pool`
    The pool worker process — a :class:`~repro.fabric.controller.
    WorkerCore` per leased job behind one persistent TCP connection,
    caching registered programs across jobs — and the controller-side
    pool bookkeeping (spawn, lease, respawn, resize, reap).

:mod:`~repro.serve.scheduler`
    One :class:`~repro.serve.scheduler.JobRun` thread per running job:
    the per-job resilient controller (credit gate, journal, quiescent
    checkpoints, respawn recovery) over leased pool workers.

:mod:`~repro.serve.ledger`
    The durable control plane: an append-only fsync'd JSONL
    write-ahead log of every job lifecycle transition, with segment
    rotation, compaction, and torn-tail tolerance — what lets a
    daemon restarted on the same ``--state-dir`` recover every job.

:mod:`~repro.serve.service` / :mod:`~repro.serve.client`
    The daemon (listener, dispatcher, failure monitor, control verbs)
    and the exactly-once client: auto-reconnect under per-request
    deadlines, idempotency-keyed submission.
"""

from .catalog import (IR_CATALOG, REJECT_STATUSES, admission_verdict,
                      build_job_suite, program_names)
from .client import ServeClient
from .jobs import (JOB_STATES, JobRecord, JobSpec, STATE_COMPLETED,
                   STATE_FAILED, STATE_PENDING, STATE_RUNNING)
from .ledger import JobLedger, LedgerReplay, replay_ledger
from .queue import JobQueue
from .service import ServeService

__all__ = [
    "IR_CATALOG",
    "REJECT_STATUSES",
    "admission_verdict",
    "build_job_suite",
    "program_names",
    "JobSpec",
    "JobRecord",
    "JobQueue",
    "JOB_STATES",
    "STATE_PENDING",
    "STATE_RUNNING",
    "STATE_COMPLETED",
    "STATE_FAILED",
    "JobLedger",
    "LedgerReplay",
    "replay_ledger",
    "ServeService",
    "ServeClient",
]
