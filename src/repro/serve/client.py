"""ServeClient: the thin wire client of the serve daemon.

Speaks the daemon's request/response protocol — a ``hello-client``
HELLO, then CMD frames answered by REPORT frames — over the same
:mod:`repro.fabric.wire` framing the workers use. Every verb is a
method; an ``("err", reason)`` reply raises
:class:`~repro.errors.ServeError` (or :class:`~repro.errors.
AdmissionError` for rejections, so callers can tell "the daemon said
no" from "the daemon broke").
"""

from __future__ import annotations

import threading

from ..errors import AdmissionError, ServeError
from ..fabric.socket import _connect_with_backoff, _load_obj, _send_obj
from ..fabric.wire import (FRAME_CMD, FRAME_HELLO, FRAME_REPORT,
                           FrameSocket, WireError)

__all__ = ["ServeClient", "resolve_addr"]


def resolve_addr(addr: str | None, addr_file: str | None) -> tuple:
    """Turn ``--addr host:port`` / ``--addr-file path`` into an
    address tuple. The file form is what scripts use: the daemon
    writes its bound address there once listening."""
    if addr:
        host, _, port = addr.rpartition(":")
        if not host or not port.isdigit():
            raise ServeError(f"bad --addr {addr!r}; expected host:port")
        return (host, int(port))
    if addr_file:
        try:
            with open(addr_file, encoding="utf-8") as fh:
                text = fh.read().strip()
        except OSError as exc:
            raise ServeError(f"cannot read --addr-file: {exc}") from exc
        return resolve_addr(text, None)
    raise ServeError("need --addr host:port or --addr-file PATH "
                     "(repro serve prints and writes its address)")

#: Reply reasons that are admissions decisions, not client errors —
#: matched on the daemon's prefix-free reason strings.
_ADMISSION_MARKERS = ("queue full", "tenant ", "statically rejected",
                      "unknown program", "daemon is shutting down",
                      "job wants ")


class ServeClient:
    def __init__(self, addr, timeout: float = 120.0):
        self.addr = tuple(addr)
        self.timeout = timeout
        sock = _connect_with_backoff(self.addr)
        sock.settimeout(timeout)
        self._fs = FrameSocket(sock)
        self._lock = threading.Lock()
        _send_obj(self._fs, FRAME_HELLO, ("hello-client", None, None))

    # -- plumbing ------------------------------------------------------
    def _request(self, req):
        with self._lock:
            try:
                _send_obj(self._fs, FRAME_CMD, req)
                while True:
                    frame = self._fs.recv()
                    if frame.kind == FRAME_REPORT:
                        break
            except WireError as exc:
                raise ServeError(
                    f"lost the daemon at {self.addr}: {exc}") from exc
        tag, payload = _load_obj(frame)
        if tag == "ok":
            return payload
        if any(payload.startswith(m) or m in payload
               for m in _ADMISSION_MARKERS):
            raise AdmissionError(payload)
        raise ServeError(payload)

    def close(self) -> None:
        self._fs.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- verbs ---------------------------------------------------------
    def submit(self, program: str, **spec) -> str:
        """Submit one job; returns its id (or raises AdmissionError)."""
        out = self._request(("submit", {"program": program, **spec}))
        return out["job"]

    def status(self, jid: str | None = None) -> dict:
        return self._request(("status", jid))

    def wait(self, jid: str, timeout: float = 60.0) -> dict:
        """Block until the job finishes (daemon-side); returns its
        record, with ``timed_out`` set if it is still running."""
        return self._request(("wait", jid, timeout))

    def programs(self) -> list:
        return self._request(("programs",))

    def resize(self, n: int) -> int:
        return self._request(("resize", n))

    def kill_worker(self, wid: int | None = None) -> int:
        return self._request(("kill-worker", wid))

    def shutdown(self, drain: bool = True) -> dict:
        return self._request(("shutdown", drain))
