"""ServeClient: the exactly-once wire client of the serve daemon.

Speaks the daemon's request/response protocol — a ``hello-client``
HELLO, then CMD frames answered by REPORT frames — over the same
:mod:`repro.fabric.wire` framing the workers use. Every verb is a
method; an error reply raises :class:`~repro.errors.ServeError` (or
:class:`~repro.errors.AdmissionError` for rejections, so callers can
tell "the daemon said no" from "the daemon broke"). Errors arrive
structured as ``("err", code, reason)`` and are classified by code;
the legacy ``("err", reason)`` 2-tuple from older daemons is still
parsed by sniffing the reason string.

Two properties make a daemon bounce a transparent retry instead of a
lost request:

* **Auto-reconnect.** A dropped connection (daemon crash, restart,
  network blip) is retried with
  :meth:`~repro.resilience.recovery.RecoveryPolicy.jittered_delays`
  under a per-request deadline; only when the deadline passes does the
  caller see a :class:`~repro.errors.ServeError`.

* **Idempotent submit.** Every submission carries an idempotency key
  (caller-chosen or auto-generated), so a resend after an ambiguous
  failure — the classic "did my first submit land?" — returns the
  original job id; the daemon never runs a duplicate.
"""

from __future__ import annotations

import os
import threading
import time
import uuid

from ..errors import AdmissionError, ServeError
from ..fabric.socket import _connect_with_backoff, _load_obj, _send_obj
from ..fabric.wire import (FRAME_CMD, FRAME_HELLO, FRAME_REPORT,
                           FrameSocket, WireError)
from ..resilience.recovery import RecoveryPolicy

__all__ = ["ServeClient", "resolve_addr"]


def _probe_pid(pid: int, addr_file: str) -> None:
    """Fail fast if the daemon that wrote ``addr_file`` is gone — a
    SIGKILLed daemon cannot clean up after itself, and connecting to
    its stale address would hang or hit whoever owns the port now."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        raise ServeError(
            f"daemon dead, stale addr file {addr_file} (pid {pid} is "
            f"gone); restart the daemon or remove the file") from None
    except PermissionError:  # pragma: no cover - alive, other user
        pass


def resolve_addr(addr: str | None, addr_file: str | None) -> tuple:
    """Turn ``--addr host:port`` / ``--addr-file path`` into an
    address tuple. The file form is what scripts use: the daemon
    writes ``pid:host:port`` there once listening, and resolution
    probes the pid so a stale file from a killed daemon is an
    immediate, explained error instead of a connect hang. Legacy
    ``host:port`` files resolve without the liveness probe."""
    if addr:
        host, _, port = addr.rpartition(":")
        if not host or not port.isdigit():
            raise ServeError(f"bad --addr {addr!r}; expected host:port")
        return (host, int(port))
    if addr_file:
        try:
            with open(addr_file, encoding="utf-8") as fh:
                text = fh.read().strip()
        except OSError as exc:
            raise ServeError(f"cannot read --addr-file: {exc}") from exc
        parts = text.split(":")
        if len(parts) == 3 and parts[0].isdigit() and parts[2].isdigit():
            _probe_pid(int(parts[0]), addr_file)
            return (parts[1], int(parts[2]))
        return resolve_addr(text, None)
    raise ServeError("need --addr host:port or --addr-file PATH "
                     "(repro serve prints and writes its address)")

#: Legacy-reply classification: reasons that are admission decisions,
#: matched on the old daemon's reason strings. Structured replies
#: carry an explicit code and never consult this.
_ADMISSION_MARKERS = ("queue full", "tenant ", "statically rejected",
                      "unknown program", "daemon is shutting down",
                      "job wants ")


def _classify(reply) -> Exception:
    """The exception for an ``("err", ...)`` reply tuple."""
    if len(reply) >= 3:   # structured: ("err", code, reason)
        code, reason = reply[1], reply[2]
        if code == "admission":
            return AdmissionError(reason)
        return ServeError(reason)
    reason = reply[1]     # legacy 2-tuple: sniff the reason string
    if any(reason.startswith(m) or m in reason
           for m in _ADMISSION_MARKERS):
        return AdmissionError(reason)
    return ServeError(reason)


class ServeClient:
    def __init__(self, addr, timeout: float = 120.0,
                 reconnect: bool = True, backoff_seed=None):
        self.addr = tuple(addr)
        self.timeout = timeout
        self.reconnect = reconnect
        self.reconnects = 0      # observability: dials after the first
        self._seed = backoff_seed
        self._policy = RecoveryPolicy(max_retries=6, backoff_s=0.05)
        self._lock = threading.Lock()
        self._fs: FrameSocket | None = None
        self._dial()

    # -- plumbing ------------------------------------------------------
    def _dial(self) -> None:
        sock = _connect_with_backoff(self.addr, seed=self._seed)
        sock.settimeout(self.timeout)
        self._fs = FrameSocket(sock)
        _send_obj(self._fs, FRAME_HELLO, ("hello-client", None, None))

    def _drop(self) -> None:
        if self._fs is not None:
            try:
                self._fs.close()
            except OSError:  # pragma: no cover
                pass
            self._fs = None

    def _request(self, req, deadline_s: float | None = None):
        """One request/response exchange, retried across connection
        loss until the per-request deadline. Retrying a ``submit`` is
        safe because every submit carries an idempotency key."""
        deadline = time.monotonic() + (
            self.timeout if deadline_s is None else deadline_s)
        delays: list = []
        with self._lock:
            while True:
                try:
                    if self._fs is None:
                        self._dial()
                        self.reconnects += 1
                    _send_obj(self._fs, FRAME_CMD, req)
                    while True:
                        frame = self._fs.recv()
                        if frame.kind == FRAME_REPORT:
                            break
                    break
                except (WireError, OSError) as exc:
                    self._drop()
                    if not self.reconnect:
                        raise ServeError(
                            f"lost the daemon at {self.addr}: "
                            f"{exc}") from exc
                    if not delays:
                        delays = self._policy.jittered_delays(self._seed)
                    delay = delays.pop(0)
                    if time.monotonic() + delay > deadline:
                        raise ServeError(
                            f"lost the daemon at {self.addr} and could "
                            f"not get an answer before the deadline: "
                            f"{exc}") from exc
                    time.sleep(delay)
        reply = _load_obj(frame)
        if reply[0] == "ok":
            return reply[1]
        raise _classify(reply)

    def close(self) -> None:
        self._drop()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- verbs ---------------------------------------------------------
    def submit(self, program: str, **spec) -> str:
        """Submit one job; returns its id (or raises AdmissionError)."""
        return self.submit_info(program, **spec)["job"]

    def submit_info(self, program: str, idempotency_key: str | None = None,
                    **spec) -> dict:
        """Submit with the full reply — ``{"job", "state"}`` plus
        ``"deduped": True`` when the idempotency key matched an earlier
        submission. A key is auto-generated when the caller supplies
        none, so retries (ours or the caller's) never duplicate."""
        key = idempotency_key or spec.pop("key", None) or uuid.uuid4().hex
        return self._request(("submit",
                              {"program": program, "key": key, **spec}))

    def status(self, jid: str | None = None) -> dict:
        return self._request(("status", jid))

    def wait(self, jid: str, timeout: float = 60.0) -> dict:
        """Block until the job finishes (daemon-side); returns its
        record, with ``timed_out`` set if it is still running."""
        return self._request(("wait", jid, timeout),
                             deadline_s=timeout + self.timeout)

    def programs(self) -> list:
        return self._request(("programs",))

    def resize(self, n: int) -> int:
        return self._request(("resize", n))

    def kill_worker(self, wid: int | None = None) -> int:
        return self._request(("kill-worker", wid))

    def shutdown(self, drain: bool = True) -> dict:
        return self._request(("shutdown", drain))
