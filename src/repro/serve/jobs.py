"""The job model: what a tenant submits and what the daemon tracks.

A :class:`JobSpec` is the immutable submission — program, shape,
tenant, priority, lease width. A :class:`JobRecord` is the daemon's
mutable view of one accepted job as it moves through the lifecycle::

    pending ──▶ running ──▶ completed   (recovered=True if any respawn)
                      └───▶ failed      (reason says why)

Rejected submissions never get a record — admission control answers
with the reason and the daemon forgets them (a bounded rejection tally
survives for ``repro status``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..errors import AdmissionError

__all__ = ["JobSpec", "JobRecord", "JOB_STATES", "STATE_PENDING",
           "STATE_RUNNING", "STATE_COMPLETED", "STATE_FAILED"]

STATE_PENDING = "pending"
STATE_RUNNING = "running"
STATE_COMPLETED = "completed"
STATE_FAILED = "failed"
JOB_STATES = (STATE_PENDING, STATE_RUNNING, STATE_COMPLETED, STATE_FAILED)

_SPEC_FIELDS = ("program", "g", "seed", "ab", "workers", "tenant",
                "priority", "key")


@dataclass(frozen=True)
class JobSpec:
    """One submission: a (program, shape) pair plus scheduling hints.

    ``workers`` is the lease width — how many pool workers the job's
    ``g*g`` logical PEs fold onto (:func:`~repro.fabric.hosts.
    cyclic_hosts`). Higher ``priority`` dispatches sooner; ties are
    FIFO. Validation raises :class:`~repro.errors.AdmissionError` so a
    malformed submission reads as a rejection, not a server error.
    """

    program: str
    g: int = 2
    seed: int = 0
    ab: int = 4
    workers: int = 2
    tenant: str = "default"
    priority: int = 0
    key: str | None = None   # idempotency key: resubmit == same job

    def validate(self) -> "JobSpec":
        if self.g < 2:
            raise AdmissionError(f"g must be >= 2 (got {self.g})")
        if self.ab < 1:
            raise AdmissionError(f"ab must be >= 1 (got {self.ab})")
        if not 1 <= self.workers <= self.g * self.g:
            raise AdmissionError(
                f"workers must be in 1..g*g = 1..{self.g * self.g} "
                f"(got {self.workers})")
        if not self.tenant or not isinstance(self.tenant, str):
            raise AdmissionError("tenant must be a non-empty string")
        if self.key is not None and (
                not self.key or not isinstance(self.key, str)):
            raise AdmissionError(
                "idempotency key must be a non-empty string or omitted")
        return self

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in _SPEC_FIELDS}

    @classmethod
    def from_dict(cls, raw) -> "JobSpec":
        if not isinstance(raw, dict):
            raise AdmissionError("job spec must be a mapping")
        unknown = set(raw) - set(_SPEC_FIELDS)
        if unknown:
            raise AdmissionError(
                f"unknown job spec field(s): {', '.join(sorted(unknown))}")
        if "program" not in raw:
            raise AdmissionError("job spec needs a 'program'")
        try:
            return cls(**raw).validate()
        except TypeError as exc:  # wrong field type bubbled from init
            raise AdmissionError(f"bad job spec: {exc}") from exc


@dataclass
class JobRecord:
    """The daemon's mutable view of one accepted job."""

    jid: str
    spec: JobSpec
    seq: int                              # admission order, FIFO key
    state: str = STATE_PENDING
    reason: str = ""                      # failure reason, "" otherwise
    restarts: int = 0                     # worker respawns paid by this job
    digest: str | None = None             # sha256 of the C result bytes
    ok: bool | None = None                # allclose vs numpy a @ b
    wall_s: float | None = None
    submitted_s: float = 0.0              # monotonic, daemon-relative
    started_s: float | None = None
    finished_s: float | None = None
    resumed: bool = False                 # re-admitted by ledger replay
    durable: bool = True                  # admitted record is fsync'd; the
                                          # dispatcher skips it until then
    done: threading.Event = field(default_factory=threading.Event)

    @property
    def recovered(self) -> bool:
        return self.state == STATE_COMPLETED and self.restarts > 0

    def finish(self, state: str, reason: str = "") -> None:
        self.state = state
        self.reason = reason
        self.done.set()

    def to_dict(self) -> dict:
        return {
            "job": self.jid,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "reason": self.reason,
            "restarts": self.restarts,
            "recovered": self.recovered,
            "resumed": self.resumed,
            "digest": self.digest,
            "ok": self.ok,
            "wall_s": self.wall_s,
        }
