"""JobRun: the per-job resilient controller over leased pool workers.

One thread per running job. It is the serve-mode restatement of
``SocketFabric._run_resilient`` with the world construction removed:
instead of forking workers and binding a listener, it sends job
headers over the pool's warm connections and tears down with
``endjob`` frames. Everything stateful is per-job and lives here —
the :class:`~repro.fabric.controller.Supervisor` (journal, quiescent
checkpoints, respawn budget) and the
:class:`~repro.fabric.controller.CreditGate` (per-host windows, hop
coalescing) — so concurrent jobs are isolated: one job's SIGKILLed
worker, exhausted budget, or timeout never touches another's.

Recovery protocol when the monitor reports a replaced worker:

1. ``Supervisor.authorize_respawn`` — budget exhausted means *this
   job* fails (the pool already replaced the process regardless);
2. re-send the job header and programs (the fresh worker's cache is
   empty), then the last committed checkpoint state;
3. ``CreditGate.reset`` + journal replay + ``pump`` — exactly the
   socket fabric's replay, re-coalescing deterministically;
4. ``(messenger id, hop count)`` dedup in the core makes the
   at-least-once replay exactly-once.

Durable daemons extend the same machinery across a *daemon* crash:
every fully-committed coordinated checkpoint is persisted as a resume
bundle — the per-host states, each host's journal suffix (the
controller→worker channel state the cut does not cover), and the
controller's ``known``/``done`` sets — to the service's checkpoint
store under ``cut:{jid}``. A restarted daemon hands the bundle back
via ``bundle=`` and :meth:`JobRun._execute` restores every host and
replays the suffixes instead of running setup; the same (mid, hops)
dedup makes the cross-restart replay exactly-once too. The bundle is
consistent because reports arrive FIFO per worker: every ``done`` a
host sent before answering the marker is folded into ``known``/
``done`` before the commit that persists them.
"""

from __future__ import annotations

import hashlib
import queue
import threading
import time

import numpy as np

from ..errors import ResilienceError, ServeError
from ..fabric.controller import CreditGate, Supervisor
from ..fabric.hosts import cyclic_hosts, resolve_hosts
from ..fabric.topology import Grid2D
from ..navp.interp import Interp
from ..resilience.recovery import RecoveryPolicy
from .catalog import build_job_suite
from .jobs import JobRecord, STATE_COMPLETED, STATE_FAILED

__all__ = ["JobRun"]


class JobRun(threading.Thread):
    """Drive one leased job to completion (or failure)."""

    def __init__(self, service, record: JobRecord, wids: list,
                 store=None, bundle=None):
        super().__init__(name=f"jobrun-{record.jid}", daemon=True)
        self.service = service
        self.record = record
        self.wids = list(wids)          # job-local host h -> wids[h]
        self.store = store              # CheckpointStore for cut bundles
        self.bundle = bundle            # resume bundle from a prior daemon
        self.reports: queue.Queue = queue.Queue()

    def post(self, msg) -> None:
        self.reports.put(msg)

    # -- lifecycle -----------------------------------------------------
    def run(self) -> None:
        record = self.record
        t0 = time.perf_counter()
        failed = False
        try:
            record.digest, record.ok = self._execute()
            record.wall_s = time.perf_counter() - t0
            record.finish(STATE_COMPLETED)
        except Exception as exc:  # noqa: BLE001 - reported per job
            failed = True
            record.wall_s = time.perf_counter() - t0
            record.finish(STATE_FAILED, f"{type(exc).__name__}: {exc}")
        finally:
            self.service.on_job_done(self, recycle=failed)

    # -- the run -------------------------------------------------------
    def _execute(self):
        service = self.service
        pool = service.pool
        record = self.record
        spec = record.spec
        jid = record.jid
        nh = len(self.wids)

        suite, a, b = build_job_suite(spec.program, spec.g, spec.seed,
                                      spec.ab)
        topology = Grid2D(spec.g)
        host_of = resolve_hosts(topology, cyclic_hosts(topology, nh))
        coords = list(topology.coords)
        coords_of_host = {
            h: [c for c in coords if host_of[c] == h] for h in range(nh)
        }

        sup = Supervisor(RecoveryPolicy(), service.max_restarts)

        def wid_of(h):
            return self.wids[h]

        def send_header(h):
            pool.send(wid_of(h), ("job", jid, h, coords_of_host[h],
                                  dict(host_of)))
            pool.ship(wid_of(h), suite.programs)

        def emit_batch(h, batch):
            cmd = (("run", jid, batch[0]) if len(batch) == 1
                   else ("runs", jid, batch))
            pool.send(wid_of(h), cmd)

        gate = CreditGate(service.window, service.coalesce, emit_batch)

        def send(h, cmd):
            """Journal + deliver one non-run, job-local command."""
            sup.journal(h, cmd)
            pool.send(wid_of(h), (cmd[0], jid) + tuple(cmd[1:]))

        def gate_send(h, payload, journal=True, flush=True):
            if journal:
                sup.journal(h, ("run", payload))
            gate.push(h, payload, flush=flush)

        def recover(h):
            """Bring this job back onto the replacement worker for
            job-local host ``h`` (the pool already forked it)."""
            try:
                sup.authorize_respawn(h)
            except ResilienceError as exc:
                raise ServeError(str(exc)) from exc
            record.restarts += 1
            send_header(h)
            state, replay = sup.recovery_script(h)
            if state is not None:
                pool.send(wid_of(h), ("restore", jid, state))
            gate.reset(h)   # every queued payload is in the journal
            for cmd in replay:
                if cmd[0] == "run":
                    gate_send(h, cmd[1], journal=False, flush=False)
                else:
                    pool.send(wid_of(h), (cmd[0], jid) + tuple(cmd[1:]))
            gate.pump(h)

        def checkpoint_all():
            cid = sup.begin_checkpoint(range(nh))
            for h in range(nh):
                pool.send(wid_of(h), ("ckpt", jid, cid))

        # -- setup: headers, programs, layout, initial events ----------
        # One FIFO connection per worker carries header, programs,
        # loads and runs in order, and cross-host hops all detour
        # through this controller — so no setup barrier is needed.
        for h in range(nh):
            send_header(h)

        known: set = set()
        done: set = set()
        if self.bundle is not None:
            # Resume a job a previous daemon session left mid-flight:
            # restore every host to the bundled cut, re-journal + replay
            # each journal suffix (the in-flight controller->worker
            # payloads the cut did not cover), and seed known/done from
            # the cut instead of injecting the entry messenger. The
            # (mid, hops) dedup in the worker core absorbs anything the
            # replay re-delivers.
            known.update(self.bundle.get("known", ()))
            done.update(self.bundle.get("done", ()))
            for h in range(nh):
                state = self.bundle.get("states", {}).get(h)
                if state is not None:
                    sup.ckpt_state[h] = state
                    pool.send(wid_of(h), ("restore", jid, state))
            for h in range(nh):
                for cmd in self.bundle.get("journal", {}).get(h, ()):
                    if cmd[0] == "run":
                        gate_send(h, cmd[1], journal=True, flush=False)
                    else:
                        send(h, cmd)
                gate.pump(h)
        else:
            for coord, node_vars in suite.layout.items():
                send(host_of[coord], ("load", coord, node_vars))
            for coord, name, args, count in suite.initial_signals:
                send(host_of[coord], ("signal0", (coord, name, args, count)))
            mid = f"{jid}/m0"
            known.add(mid)
            gate_send(host_of[(0, 0)], (
                mid, [], 0, (0, 0),
                Interp(suite.entry.name, {}).agent_snapshot(), 0,
            ))

        # -- event loop ------------------------------------------------
        commits: dict = {}   # ckpt id -> hosts that have committed
        deadline = time.monotonic() + service.job_timeout_s
        while not known <= done:
            msg = self._next_report(deadline, done, known)
            tag = msg[0]
            if tag == "respawned":
                recover(self.wids.index(msg[1]))
                continue
            op, body = msg[1], msg[2]
            if op == "done":
                done.add(body[1])
                known.update(body[2])
            elif op == "credit":
                gate.credit(body[1])
            elif op == "hop":
                _, _src, dst, task = body
                gate_send(dst, task)
                sup.note_forward()
                if (service.checkpoint_every is not None
                        and sup.forwards_since_ckpt
                        >= service.checkpoint_every):
                    checkpoint_all()
            elif op == "ckpt":
                sup.commit_checkpoint(body[1], body[2], body[3])
                committed = commits.setdefault(body[2], set())
                committed.add(body[1])
                if len(committed) == nh and self.store is not None:
                    self._persist_cut(sup, body[2], nh, known, done)
            elif op == "error":
                raise ServeError(f"worker host {body[1]}: {body[2]}")

        # -- collect ---------------------------------------------------
        for h in range(nh):
            pool.send(wid_of(h), ("collect", jid))
        places: dict = {}
        hosts_seen: set = set()
        while len(hosts_seen) < nh:
            msg = self._next_report(deadline, hosts_seen, range(nh),
                                    phase="collect")
            if msg[0] == "respawned":
                h = self.wids.index(msg[1])
                recover(h)
                pool.send(wid_of(h), ("collect", jid))
                continue
            op, body = msg[1], msg[2]
            if op == "vars":
                hosts_seen.add(body[1])
                places.update(body[2])
            elif op == "credit":
                gate.credit(body[1])
            elif op == "error":
                raise ServeError(f"worker host {body[1]}: {body[2]}")

        for h in range(nh):
            pool.send(wid_of(h), ("endjob", jid))

        # -- assemble + verify -----------------------------------------
        sample = next(iter(suite.layout.values()))["C"]
        ab = sample.shape[0]
        g = spec.g
        c = np.empty((g * ab, g * ab), dtype=sample.dtype)
        for (i, j), node_vars in places.items():
            c[i * ab:(i + 1) * ab, j * ab:(j + 1) * ab] = node_vars["C"]
        digest = hashlib.sha256(c.tobytes()).hexdigest()
        return digest, bool(np.allclose(c, a @ b))

    def _persist_cut(self, sup, cid, nh, known, done):
        """Every host committed checkpoint ``cid``: persist the resume
        bundle a restarted daemon needs to continue this job.

        The journal suffix per host is the controller->worker channel
        state — payloads forwarded after the cut that a restored worker
        has not seen. ``known``/``done`` are captured *now* (all
        commits arrived), which is consistent because reports are FIFO
        per connection: any ``done`` sent before a host's commit is
        already folded in, and over-delivery into sets is idempotent.
        """
        bundle = {
            "cid": cid,
            "states": {h: sup.ckpt_state.get(h) for h in range(nh)},
            "journal": {h: sup.ledger.entries(h) for h in range(nh)},
            "known": set(known),
            "done": set(done),
        }
        self.store.save(f"cut:{self.record.jid}", bundle)
        self.service.on_job_checkpoint(self.record, cid)

    def _next_report(self, deadline, have, want, phase="run"):
        """Block for the next report, enforcing the job deadline."""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                missing = len(set(want) - set(have))
                raise ServeError(
                    f"job timed out after "
                    f"{self.service.job_timeout_s:.0f}s "
                    f"({phase}: {missing} outstanding, "
                    f"{self.record.restarts} respawn(s))")
            try:
                return self.reports.get(timeout=min(remaining, 0.1))
            except queue.Empty:
                continue
