"""repro — a reproduction of "Incremental Parallelization Using
Navigational Programming: A Case Study" (Pan, Zhang, Asuncion, Lai,
Dillencourt, Bic — ICPP 2005).

The package provides, from the bottom up:

* :mod:`repro.machine` — a cluster model calibrated to the paper's SUN
  Blade 100 testbed (flop rate, 100 Mb/s Ethernet, paging, block-LRU
  cache behaviour);
* :mod:`repro.fabric` — three interchangeable executors for
  navigational programs: a deterministic virtual-time discrete-event
  simulator (``SimFabric``), real daemon threads (``ThreadFabric``),
  and real OS processes with pickled-state migration
  (``ProcessFabric``);
* :mod:`repro.navp` — the NavP programming model: self-migrating
  messengers with ``hop``/``inject``/agent variables/node variables/
  events, plus the navigational IR and its interpreter;
* :mod:`repro.mpi` — an MPI-like SPMD substrate over the same fabrics;
* :mod:`repro.matmul` — the case study: sequential, the six NavP
  stages (Figures 5-15), Gentleman, Cannon, SUMMA (the ScaLAPACK
  stand-in), the naive ``doall``, and the staggering analysis;
* :mod:`repro.transform` — the paper's three transformations (DSC,
  pipelining, phase shifting) as mechanical IR rewrites, deriving
  Figures 5/7/9 from Figure 2;
* :mod:`repro.perfmodel` — regeneration of every table and figure in
  the paper's evaluation, next to the published numbers;
* :mod:`repro.resilience` — deterministic fault injection, consistent
  checkpoints, and crash recovery across all three fabrics (see
  ``docs/resilience.md``).

Quick start::

    from repro import MatmulCase, run_variant
    case = MatmulCase(n=1536, ab=128, shadow=True)
    result = run_variant("navp-2d-phase", case, geometry=3)
    print(result.time)   # modeled seconds on the paper's cluster
"""

from .errors import (
    ConfigurationError,
    DeadlockError,
    FabricError,
    MigrationError,
    PartitionError,
    ProtocolError,
    ReproError,
    SimulationError,
    TopologyError,
    TransformError,
    VerificationError,
)
from .fabric import Grid1D, Grid2D, SimFabric, Topology
from .fabric.factory import make_fabric
from .fabric.process import ProcessFabric
from .fabric.threads import ThreadFabric
from .machine import (
    FAST_TEST_MACHINE,
    SUN_BLADE_100,
    MachineSpec,
    MemorySpec,
    NetworkSpec,
    PagingModel,
)
from .matmul import MatmulCase, RunResult, run_variant, variant_names
from .mpi import Comm, run_spmd
from .navp import Messenger
from .navp.interp import Interp, IRMessenger
from .resilience import Crash, FaultPlan, MessageFault, SlowNode, injected
from .perfmodel import (
    build_figure1,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
)
from .transform import derive_chain, verify_chain

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # errors
    "ReproError", "ConfigurationError", "TopologyError", "PartitionError",
    "FabricError", "DeadlockError", "MigrationError", "ProtocolError",
    "SimulationError", "TransformError", "VerificationError",
    # fabrics
    "SimFabric", "ThreadFabric", "ProcessFabric", "make_fabric",
    "Topology", "Grid1D", "Grid2D",
    # machine
    "MachineSpec", "NetworkSpec", "MemorySpec", "PagingModel",
    "SUN_BLADE_100", "FAST_TEST_MACHINE",
    # NavP
    "Messenger", "Interp", "IRMessenger",
    # MPI
    "Comm", "run_spmd",
    # case study
    "MatmulCase", "RunResult", "run_variant", "variant_names",
    # transformations
    "derive_chain", "verify_chain",
    # resilience
    "FaultPlan", "Crash", "MessageFault", "SlowNode", "injected",
    # evaluation
    "build_table1", "build_table2", "build_table3", "build_table4",
    "build_figure1",
]
