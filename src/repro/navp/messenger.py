"""The NavP programming model: self-migrating messengers.

A messenger is written as a plain Python class whose :meth:`main`
generator is the navigational program. Small data travels with the
messenger in **agent variables** (instance attributes — by the paper's
convention named ``mX``); large data stays put in **node variables**
(``self.vars[...]``, resident at the current PE and shared by all
messengers there). Navigation and synchronization are expressed by
*yielding* the helpers below, mirroring the paper's pseudocode
one-for-one::

    class RowCarrier(Messenger):            # Figure 7
        def __init__(self, mi, nodemap):
            self.mi = mi
            self._node = nodemap

        def main(self):
            self.mA = self.vars["A"][self.mi]        # mA(*) = A(mi,*)
            for mj in range(self.N):
                yield self.hop(self._node(mj))       # hop(node(mj))
                ...
                yield self.compute(fn, flops=...)    # the k loop
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import FabricError
from ..fabric import effects as fx

__all__ = ["Messenger"]


class Messenger:
    """Base class for self-migrating computations.

    Subclasses implement :meth:`main` as a generator. Attributes not
    starting with ``_`` are agent variables: they are charged against
    the network on every hop and, on the process fabric, pickled and
    shipped. Keep references to node data out of agent variables —
    read node variables through :attr:`vars` at the current place
    instead (that is the whole point of hopping).
    """

    _ctx = None  # bound by the fabric while running
    _name = ""

    def main(self):
        raise NotImplementedError

    # -- where am I ------------------------------------------------------
    @property
    def vars(self) -> dict:
        """Node variables of the PE the messenger currently resides on."""
        if self._ctx is None:
            raise FabricError("messenger is not running on a fabric")
        return self._ctx.place.vars

    @property
    def here(self) -> tuple:
        """Coordinate of the current PE."""
        if self._ctx is None:
            raise FabricError("messenger is not running on a fabric")
        return self._ctx.place.coord

    @property
    def machine(self):
        """The machine spec of the hosting fabric (for cost formulas)."""
        if self._ctx is None:
            raise FabricError("messenger is not running on a fabric")
        return self._ctx.fabric.machine

    # -- navigational commands (yield these) ---------------------------
    def hop(self, coord, nbytes: int | None = None) -> fx.Hop:
        """``hop(node(...))`` — migrate, carrying the agent variables."""
        return fx.Hop(coord=tuple(coord) if not isinstance(coord, int)
                      else (coord,), nbytes=nbytes)

    def inject(self, messenger: "Messenger") -> fx.Inject:
        """Spawn another messenger here (injection is always local)."""
        return fx.Inject(messenger=messenger)

    def wait_event(self, name: str, *args) -> fx.WaitEvent:
        """``waitEvent(name(args))`` on the current PE (counting)."""
        return fx.WaitEvent(name=name, args=tuple(args))

    def signal_event(self, name: str, *args, count: int = 1) -> fx.SignalEvent:
        """``signalEvent(name(args))`` on the current PE."""
        return fx.SignalEvent(name=name, args=tuple(args), count=count)

    def compute(
        self,
        fn: Callable[[], Any] | None = None,
        flops: float = 0.0,
        kind: str | None = "navp",
        note: str = "",
    ) -> fx.Compute:
        """Run ``fn`` on the current PE, charging ``flops`` of CPU time."""
        return fx.Compute(fn=fn, flops=flops, kind=kind, note=note)

    def delay(self, seconds: float) -> fx.Delay:
        return fx.Delay(seconds=seconds)

    def __repr__(self) -> str:
        where = self._ctx.place.coord if self._ctx is not None else "unbound"
        return f"{type(self).__name__}({where})"
