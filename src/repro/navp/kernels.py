"""Registered compute kernels for IR messengers.

IR programs cannot carry Python closures — their whole point is that a
messenger's continuation must pickle and migrate between OS processes
while *code stays put* (MESSENGERS semantics: "although the state of
the computation is moved on each hop, the code is not moved"). Compute
steps therefore name kernels from this registry, which is imported
identically by every worker process.

Each kernel is ``(fn, flops)``: ``fn(*args)`` produces the value,
``flops(*args)`` the cost charged by the fabric. Kernels accept both
real arrays and :class:`~repro.util.shadow.ShadowArray` stand-ins.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..util.shadow import ShadowArray

__all__ = ["KERNELS", "register_kernel", "get_kernel", "Kernel"]


class Kernel:
    __slots__ = ("name", "fn", "flops")

    def __init__(self, name, fn, flops):
        self.name = name
        self.fn = fn
        self.flops = flops

    def __repr__(self) -> str:
        return f"Kernel({self.name})"


KERNELS: dict = {}


def register_kernel(name: str, fn, flops=None) -> None:
    """Add a kernel; ``flops`` defaults to zero cost."""
    if name in KERNELS:
        raise ConfigurationError(f"kernel {name!r} already registered")
    KERNELS[name] = Kernel(name, fn, flops or (lambda *a: 0.0))


def get_kernel(name: str) -> Kernel:
    try:
        return KERNELS[name]
    except KeyError:
        raise ConfigurationError(f"unknown kernel {name!r}") from None


def _zeros_from(ref):
    """A zero block with the shape/dtype of ``ref``."""
    if isinstance(ref, ShadowArray):
        return ShadowArray(ref.shape, ref.dtype)
    return np.zeros_like(ref)


def _gemm_acc(t, a, b):
    """``t + a @ b`` (returned, not in place: IR values are immutable)."""
    return t + a @ b


def _gemm_acc_flops(t, a, b) -> float:
    m, k = a.shape
    _, n = b.shape
    return 2.0 * m * k * n


def _copy(x):
    return x.copy() if hasattr(x, "copy") else x


register_kernel("zeros_from", _zeros_from)
register_kernel("gemm_acc", _gemm_acc, _gemm_acc_flops)
register_kernel("copy", _copy)
