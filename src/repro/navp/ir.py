"""The navigational IR: picklable programs with hops, events, loops.

This small intermediate representation exists for two reasons, both
rooted in how MESSENGERS itself works:

1. **Process migration.** CPython cannot pickle a live generator frame,
   but MESSENGERS never ships code anyway — it compiles navigational
   programs into resumption points and moves only the computation
   *state*. An IR program is pure data; its interpreter's continuation
   (program name + control stack + agent environment) pickles in a few
   hundred bytes plus the agent variables, which is exactly what
   :class:`~repro.fabric.process.ProcessFabric` ships between worker
   processes.

2. **Mechanical transformation.** The paper's DSC / pipelining /
   phase-shifting transformations are rewrites of program *structure*;
   :mod:`repro.transform` implements them as functions from IR to IR,
   turning Figure 2 into Figures 5, 7 and 9 mechanically.

Expressions: :class:`Const`, :class:`Var` (agent variable),
:class:`Bin` (integer arithmetic: ``+ - * % //`` and comparisons),
:class:`NodeGet` (read a node variable entry at the current place), and
:class:`Index` (subscript an agent value). Node variables holding
matrices are dictionaries keyed by int or tuple-of-int block indices,
so distribution is just "which keys live where" and most statements
survive re-distribution untouched — the property the DSC transformation
relies on.

Statements: :class:`For` (0..count-1), :class:`If`, :class:`Assign`
(free control move), :class:`ComputeStmt` (charged kernel call),
:class:`NodeSet`, :class:`HopStmt`, :class:`InjectStmt`,
:class:`WaitStmt`, :class:`SignalStmt`.

Programs are registered by name in :data:`REGISTRY`; every process that
imports the same modules sees the same registry — code is not moved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigurationError

__all__ = [
    "Const", "Var", "Bin", "NodeGet", "Index",
    "For", "If", "Assign", "ComputeStmt", "NodeSet",
    "HopStmt", "InjectStmt", "WaitStmt", "SignalStmt",
    "Program", "REGISTRY", "register_program", "get_program",
    "node_at", "body_at",
]


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------

class Expr:
    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    value: Any

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Var(Expr):
    name: str

    def __repr__(self) -> str:
        return self.name


_BIN_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "%": lambda a, b: a % b,
    "//": lambda a, b: a // b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
}


@dataclass(frozen=True)
class Bin(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BIN_OPS:
            raise ConfigurationError(f"unsupported operator {self.op!r}")

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class NodeGet(Expr):
    """Read entry ``idx`` of node variable ``name`` at the current PE."""

    name: str
    idx: tuple = ()

    def __repr__(self) -> str:
        return f"{self.name}{list(self.idx)!r}"


@dataclass(frozen=True)
class Index(Expr):
    """Subscript an agent value (``mA[k]``)."""

    base: Expr
    idx: tuple = ()

    def __repr__(self) -> str:
        return f"{self.base!r}{list(self.idx)!r}"


# --------------------------------------------------------------------------
# statements
# --------------------------------------------------------------------------

class Stmt:
    __slots__ = ()


@dataclass(frozen=True)
class For(Stmt):
    var: str
    count: Expr
    body: tuple

    def __repr__(self) -> str:
        return f"For({self.var} in {self.count!r}: {len(self.body)} stmts)"


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: tuple
    orelse: tuple = ()


@dataclass(frozen=True)
class Assign(Stmt):
    """Free control-level move: agent var = expression."""

    var: str
    expr: Expr


@dataclass(frozen=True)
class ComputeStmt(Stmt):
    """Charged kernel call: ``out = kernel(*args)``."""

    kernel: str
    args: tuple
    out: str  # agent variable receiving the result
    kind: str = "navp"


@dataclass(frozen=True)
class NodeSet(Stmt):
    """Write entry ``idx`` of node variable ``name`` at the current PE."""

    name: str
    idx: tuple
    expr: Expr


@dataclass(frozen=True)
class HopStmt(Stmt):
    place: tuple  # tuple of Exprs forming the destination coordinate


@dataclass(frozen=True)
class InjectStmt(Stmt):
    program: str          # registered program name
    bindings: tuple = ()  # ((agent_var, Expr), ...) initial environment


@dataclass(frozen=True)
class WaitStmt(Stmt):
    event: str
    args: tuple = ()


@dataclass(frozen=True)
class SignalStmt(Stmt):
    event: str
    args: tuple = ()
    count: Expr = Const(1)


# --------------------------------------------------------------------------
# programs and the registry
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Program:
    name: str
    body: tuple
    params: tuple = ()  # agent variables expected at injection

    def __repr__(self) -> str:
        return f"Program({self.name}, params={list(self.params)})"


REGISTRY: dict = {}


def register_program(program: Program, replace: bool = False) -> Program:
    """Install a program under its name (same in every process)."""
    if not replace and program.name in REGISTRY:
        existing = REGISTRY[program.name]
        if existing != program:
            raise ConfigurationError(
                f"program {program.name!r} already registered differently"
            )
        return existing
    REGISTRY[program.name] = program
    return program


def get_program(name: str) -> Program:
    try:
        return REGISTRY[name]
    except KeyError:
        raise ConfigurationError(f"unknown program {name!r}") from None


# --------------------------------------------------------------------------
# structural navigation (paths are how continuations reference code)
# --------------------------------------------------------------------------

def body_at(program: Program, path: tuple) -> tuple:
    """The statement list addressed by ``path``.

    A path is a tuple of statement indices: each index selects a
    compound statement (For, If-then) within the current body and
    descends into it. ``If`` descent uses ``(index, branch)`` pairs
    where branch is ``"then"`` or ``"else"``.
    """
    body = program.body
    for step in path:
        if isinstance(step, tuple):
            idx, branch = step
        else:
            idx, branch = step, None
        if not 0 <= idx < len(body):
            raise ConfigurationError(
                f"path step {step} out of range in {program.name}"
            )
        stmt = body[idx]
        if branch is not None:
            if not isinstance(stmt, If):
                raise ConfigurationError(f"path step {step} expects If")
            body = stmt.then if branch == "then" else stmt.orelse
        else:
            if not isinstance(stmt, For):
                raise ConfigurationError(f"path step {step} expects For")
            body = stmt.body
    return body


def node_at(program: Program, path: tuple, index: int) -> Stmt:
    return body_at(program, path)[index]
