"""Navigational Programming runtime: messengers, IR, interpreters."""

from . import ir, kernels
from .interp import Interp, IRMessenger, run_ir_on_fabric
from .messenger import Messenger

__all__ = [
    "Messenger",
    "Interp",
    "IRMessenger",
    "run_ir_on_fabric",
    "ir",
    "kernels",
]
