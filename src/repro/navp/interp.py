"""Interpreter for navigational IR programs.

An :class:`Interp` holds a *continuation*: the registered program's
name, a control stack of (path, pc, loop) frames addressing positions
in the program tree, and the agent environment. All three are plain
picklable data — this is what the process fabric ships on a hop.

The interpreter communicates with its host (an :class:`IRMessenger` on
the sim/thread fabrics, or a worker loop on the process fabric) through
:func:`Interp.next_action`: free statements (loops, assignments, node
writes) execute inline; effectful statements return an action tuple and
leave the continuation already advanced past them, so the host can
resume after performing the effect — or pickle the whole interpreter
and resume it elsewhere.

Action tuples::

    ("hop",     coord)
    ("compute", kernel_name, argvals, out_var, kind)
    ("wait",    event, args)
    ("signal",  event, args, count)
    ("inject",  program_name, env_dict)
"""

from __future__ import annotations

from typing import Any

from ..errors import ConfigurationError, FabricError
from . import ir
from .kernels import get_kernel
from .messenger import Messenger

__all__ = ["Interp", "IRMessenger", "run_ir_on_fabric"]


class Interp:
    """A resumable, picklable IR continuation."""

    def __init__(self, program: str, env: dict | None = None):
        ir.get_program(program)  # validate eagerly
        self.program = program
        self.env: dict = dict(env or {})
        self.stack: list = [[(), 0, None]]  # [path, pc, loop]

    # -- expression evaluation -----------------------------------------
    def eval(self, expr: ir.Expr, node_vars: dict) -> Any:
        if isinstance(expr, ir.Const):
            return expr.value
        if isinstance(expr, ir.Var):
            try:
                return self.env[expr.name]
            except KeyError:
                raise FabricError(
                    f"agent variable {expr.name!r} is unbound in "
                    f"{self.program}"
                ) from None
        if isinstance(expr, ir.Bin):
            left = self.eval(expr.left, node_vars)
            right = self.eval(expr.right, node_vars)
            return ir._BIN_OPS[expr.op](left, right)
        if isinstance(expr, ir.NodeGet):
            key = self._key(expr.idx, node_vars)
            store = node_vars.get(expr.name)
            if store is None:
                raise FabricError(
                    f"node variable {expr.name!r} absent at this PE"
                )
            return store[key] if key is not None else store
        if isinstance(expr, ir.Index):
            base = self.eval(expr.base, node_vars)
            key = self._key(expr.idx, node_vars)
            return base[key]
        raise ConfigurationError(f"unknown expression {expr!r}")

    def _key(self, idx: tuple, node_vars: dict):
        if not idx:
            return None
        vals = tuple(self.eval(e, node_vars) for e in idx)
        return vals[0] if len(vals) == 1 else vals

    # -- control ------------------------------------------------------------
    @property
    def done(self) -> bool:
        return not self.stack

    def _program(self) -> ir.Program:
        return ir.get_program(self.program)

    def next_action(self, node_vars: dict):
        """Advance to the next effect; None when the program finished."""
        prog = self._program()
        while self.stack:
            frame = self.stack[-1]
            path, pc, loop = frame
            body = ir.body_at(prog, path)
            if pc >= len(body):
                if loop is not None:
                    var, count = loop
                    self.env[var] += 1
                    if self.env[var] < count:
                        frame[1] = 0
                        continue
                self.stack.pop()
                continue

            stmt = body[pc]

            if isinstance(stmt, ir.For):
                frame[1] = pc + 1
                count = self.eval(stmt.count, node_vars)
                if count > 0:
                    self.env[stmt.var] = 0
                    self.stack.append([path + (pc,), 0, (stmt.var, count)])
                continue

            if isinstance(stmt, ir.If):
                frame[1] = pc + 1
                branch = "then" if self.eval(stmt.cond, node_vars) else "else"
                target = stmt.then if branch == "then" else stmt.orelse
                if target:
                    self.stack.append([path + ((pc, branch),), 0, None])
                continue

            if isinstance(stmt, ir.Assign):
                self.env[stmt.var] = self.eval(stmt.expr, node_vars)
                frame[1] = pc + 1
                continue

            if isinstance(stmt, ir.NodeSet):
                key = self._key(stmt.idx, node_vars)
                value = self.eval(stmt.expr, node_vars)
                if key is None:
                    node_vars[stmt.name] = value
                else:
                    node_vars.setdefault(stmt.name, {})[key] = value
                frame[1] = pc + 1
                continue

            # effectful statements: advance past, then report
            frame[1] = pc + 1

            if isinstance(stmt, ir.HopStmt):
                coord = tuple(self.eval(e, node_vars) for e in stmt.place)
                return ("hop", coord)
            if isinstance(stmt, ir.ComputeStmt):
                argvals = tuple(
                    self.eval(e, node_vars) for e in stmt.args)
                return ("compute", stmt.kernel, argvals, stmt.out, stmt.kind)
            if isinstance(stmt, ir.WaitStmt):
                args = tuple(self.eval(e, node_vars) for e in stmt.args)
                return ("wait", stmt.event, args)
            if isinstance(stmt, ir.SignalStmt):
                args = tuple(self.eval(e, node_vars) for e in stmt.args)
                return ("signal", stmt.event, args,
                        self.eval(stmt.count, node_vars))
            if isinstance(stmt, ir.InjectStmt):
                child_env = {
                    var: self.eval(e, node_vars)
                    for var, e in stmt.bindings
                }
                return ("inject", stmt.program, child_env)

            raise ConfigurationError(f"unknown statement {stmt!r}")
        return None

    def agent_snapshot(self) -> dict:
        """What a hop must carry: the continuation as plain data."""
        return {
            "program": self.program,
            "env": self.env,
            "stack": [list(f) for f in self.stack],
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "Interp":
        interp = cls.__new__(cls)
        interp.program = snap["program"]
        interp.env = snap["env"]
        interp.stack = [list(f) for f in snap["stack"]]
        return interp


class IRMessenger(Messenger):
    """Runs an IR program as a messenger on the sim/thread fabrics."""

    def __init__(self, program: str, env: dict | None = None):
        self.name = program
        self.interp = Interp(program, env)

    def main(self):
        interp = self.interp
        while True:
            action = interp.next_action(self.vars)
            if action is None:
                return
            kind = action[0]
            if kind == "hop":
                yield self.hop(action[1])
            elif kind == "compute":
                _, kname, argvals, out, cost_kind = action
                kernel = get_kernel(kname)
                value = yield self.compute(
                    fn=lambda k=kernel, a=argvals: k.fn(*a),
                    flops=kernel.flops(*argvals),
                    kind=cost_kind,
                    note=kname,
                )
                interp.env[out] = value
            elif kind == "wait":
                yield self.wait_event(action[1], *action[2])
            elif kind == "signal":
                yield self.signal_event(action[1], *action[2],
                                        count=action[3])
            elif kind == "inject":
                yield self.inject(IRMessenger(action[1], action[2]))
            else:  # pragma: no cover - next_action is exhaustive
                raise ConfigurationError(f"unknown action {action!r}")


def run_ir_on_fabric(fabric, program: str, env: dict | None = None,
                     at=(0,)):
    """Inject an IR program at a place and run the fabric to completion."""
    fabric.inject(at, IRMessenger(program, env))
    return fabric.run()
