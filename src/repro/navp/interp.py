"""Interpreter for navigational IR programs.

An :class:`Interp` holds a *continuation*: the registered program's
name, a control stack of (path, pc, loop) frames addressing positions
in the program tree, and the agent environment. All three are plain
picklable data — this is what the process fabric ships on a hop.

The interpreter communicates with its host (an :class:`IRMessenger` on
the sim/thread fabrics, or a worker loop on the process fabric) through
:func:`Interp.next_action`: free statements (loops, assignments, node
writes) execute inline; effectful statements return an action tuple and
leave the continuation already advanced past them, so the host can
resume after performing the effect — or pickle the whole interpreter
and resume it elsewhere.

Action tuples::

    ("hop",     coord)
    ("compute", kernel_name, argvals, out_var, kind)
    ("wait",    event, args)
    ("signal",  event, args, count)
    ("inject",  program_name, env_dict)
"""

from __future__ import annotations

from typing import Any

from ..errors import ConfigurationError, FabricError
from . import ir
from .kernels import get_kernel
from .messenger import Messenger

__all__ = ["Interp", "IRMessenger", "run_ir_on_fabric"]


class Interp:
    """A resumable, picklable IR continuation."""

    def __init__(self, program: str, env: dict | None = None):
        ir.get_program(program)  # validate eagerly
        self.program = program
        self.env: dict = dict(env or {})
        self.stack: list = [[(), 0, None]]  # [path, pc, loop]
        # Optional access tap (repro.fabric.hb.InterpTap) used by the
        # dynamic race checker; None keeps every hot path branch-free
        # beyond a single identity test.
        self.tracer = None

    # -- expression evaluation -----------------------------------------
    def eval(self, expr: ir.Expr, node_vars: dict) -> Any:
        # Exact-type tests first (Const/Var dominate every workload);
        # subclasses of the IR nodes fall through to isinstance below.
        cls = expr.__class__
        if cls is ir.Const:
            return expr.value
        if cls is ir.Var:
            try:
                return self.env[expr.name]
            except KeyError:
                raise FabricError(
                    f"agent variable {expr.name!r} is unbound in "
                    f"{self.program}"
                ) from None
        if cls is ir.Bin:
            return ir._BIN_OPS[expr.op](
                self.eval(expr.left, node_vars),
                self.eval(expr.right, node_vars))
        return self._eval_slow(expr, node_vars)

    def _eval_slow(self, expr: ir.Expr, node_vars: dict) -> Any:
        if isinstance(expr, ir.NodeGet):
            key = self._key(expr.idx, node_vars)
            store = node_vars.get(expr.name)
            if store is None:
                raise FabricError(
                    f"node variable {expr.name!r} absent at this PE"
                )
            tracer = self.tracer
            if tracer is not None:
                tracer.on_read(expr.name, key)
            return store[key] if key is not None else store
        if isinstance(expr, ir.Index):
            base = self.eval(expr.base, node_vars)
            key = self._key(expr.idx, node_vars)
            return base[key]
        if isinstance(expr, ir.Const):
            return expr.value
        if isinstance(expr, ir.Var):
            try:
                return self.env[expr.name]
            except KeyError:
                raise FabricError(
                    f"agent variable {expr.name!r} is unbound in "
                    f"{self.program}"
                ) from None
        if isinstance(expr, ir.Bin):
            return ir._BIN_OPS[expr.op](
                self.eval(expr.left, node_vars),
                self.eval(expr.right, node_vars))
        raise ConfigurationError(f"unknown expression {expr!r}")

    def _key(self, idx: tuple, node_vars: dict):
        if not idx:
            return None
        vals = tuple(self.eval(e, node_vars) for e in idx)
        return vals[0] if len(vals) == 1 else vals

    # -- control ------------------------------------------------------------
    @property
    def done(self) -> bool:
        return not self.stack

    def _program(self) -> ir.Program:
        return ir.get_program(self.program)

    def next_action(self, node_vars: dict):
        """Advance to the next effect; None when the program finished."""
        prog = ir.get_program(self.program)
        env = self.env
        stack = self.stack
        evaluate = self.eval
        tracer = self.tracer
        while stack:
            frame = stack[-1]
            path, pc, loop = frame
            body = _body_cached(prog, path)
            if pc >= len(body):
                if loop is not None:
                    var, count = loop
                    env[var] += 1
                    if env[var] < count:
                        frame[1] = 0
                        continue
                stack.pop()
                continue

            stmt = body[pc]
            code = _STMT_CODES.get(stmt.__class__)
            if code is None:
                code = _resolve_stmt(stmt.__class__)
            if tracer is not None:
                tracer.site = (path, pc)

            if code == _ASSIGN:
                env[stmt.var] = evaluate(stmt.expr, node_vars)
                frame[1] = pc + 1
                continue

            if code == _FOR:
                frame[1] = pc + 1
                count = evaluate(stmt.count, node_vars)
                if count > 0:
                    env[stmt.var] = 0
                    stack.append([path + (pc,), 0, (stmt.var, count)])
                continue

            if code == _IF:
                frame[1] = pc + 1
                if evaluate(stmt.cond, node_vars):
                    target, branch = stmt.then, "then"
                else:
                    target, branch = stmt.orelse, "else"
                if target:
                    stack.append([path + ((pc, branch),), 0, None])
                continue

            if code == _NODESET:
                key = self._key(stmt.idx, node_vars)
                value = evaluate(stmt.expr, node_vars)
                if key is None:
                    node_vars[stmt.name] = value
                else:
                    node_vars.setdefault(stmt.name, {})[key] = value
                if tracer is not None:
                    tracer.on_write(stmt.name, key)
                frame[1] = pc + 1
                continue

            # effectful statements: advance past, then report
            frame[1] = pc + 1

            if code == _HOP:
                coord = tuple(evaluate(e, node_vars) for e in stmt.place)
                return ("hop", coord)
            if code == _COMPUTE:
                argvals = tuple(
                    evaluate(e, node_vars) for e in stmt.args)
                return ("compute", stmt.kernel, argvals, stmt.out, stmt.kind)
            if code == _WAIT:
                args = tuple(evaluate(e, node_vars) for e in stmt.args)
                return ("wait", stmt.event, args)
            if code == _SIGNAL:
                args = tuple(evaluate(e, node_vars) for e in stmt.args)
                return ("signal", stmt.event, args,
                        evaluate(stmt.count, node_vars))
            if code == _INJECT:
                child_env = {
                    var: evaluate(e, node_vars)
                    for var, e in stmt.bindings
                }
                return ("inject", stmt.program, child_env)

            raise ConfigurationError(f"unknown statement {stmt!r}")
        return None

    def agent_snapshot(self) -> tuple:
        """What a hop must carry: the continuation as plain data.

        The payload is the tuple ``(program_name, env, stack_frames)``
        — tuples pickle without per-instance key strings, which is
        measurable at hop rates. :meth:`from_snapshot` also accepts the
        pre-tuple ``{"program", "env", "stack"}`` dict payloads so
        mixed-version worker pools keep interoperating.
        """
        return (self.program, self.env, [list(f) for f in self.stack])

    @classmethod
    def from_snapshot(cls, snap) -> "Interp":
        interp = cls.__new__(cls)
        if isinstance(snap, tuple):
            program, env, stack = snap
        else:  # legacy dict snapshot
            program, env, stack = (
                snap["program"], snap["env"], snap["stack"])
        interp.program = program
        interp.env = env
        interp.stack = [list(f) for f in stack]
        interp.tracer = None
        return interp


# Statement opcodes: exact class -> code, with an isinstance fallback so
# IR subclasses dispatch like their base (resolved once, then cached).
(_ASSIGN, _FOR, _IF, _NODESET, _HOP,
 _COMPUTE, _WAIT, _SIGNAL, _INJECT) = range(9)

_STMT_CODES: dict = {
    ir.Assign: _ASSIGN,
    ir.For: _FOR,
    ir.If: _IF,
    ir.NodeSet: _NODESET,
    ir.HopStmt: _HOP,
    ir.ComputeStmt: _COMPUTE,
    ir.WaitStmt: _WAIT,
    ir.SignalStmt: _SIGNAL,
    ir.InjectStmt: _INJECT,
}

_STMT_BASES = tuple(_STMT_CODES.items())


def _resolve_stmt(cls):
    for base, code in _STMT_BASES:
        if issubclass(cls, base):
            _STMT_CODES[cls] = code
            return code
    return None


def _body_cached(prog: ir.Program, path: tuple) -> tuple:
    """``ir.body_at`` memoized on the Program object itself, so the
    cache's lifetime (and invalidation) is simply the program's."""
    cache = prog.__dict__.get("_body_cache")
    if cache is None:
        cache = {}
        object.__setattr__(prog, "_body_cache", cache)
    body = cache.get(path)
    if body is None:
        body = cache[path] = ir.body_at(prog, path)
    return body


class IRMessenger(Messenger):
    """Runs an IR program as a messenger on the sim/thread fabrics.

    ``_last_action`` always holds the IR action currently being
    performed as plain data — what a coordinated snapshot records as
    the cut's *pending effect* (the :class:`repro.fabric.effects`
    object itself may close over a kernel and is not restorable).
    ``_pending`` is set by :meth:`resume`: the one action a restored
    continuation must re-perform before advancing, because its
    snapshot was taken with the interpreter already past it.
    """

    _pending = None
    _last_action = None

    def __init__(self, program: str, env: dict | None = None):
        self.name = program
        self.interp = Interp(program, env)

    @classmethod
    def resume(cls, snapshot, pending=None) -> "IRMessenger":
        """Rebuild a messenger from a continuation snapshot.

        ``snapshot`` is what :meth:`Interp.agent_snapshot` produced
        (tuple or legacy dict); ``pending`` is an IR action tuple to
        re-perform first, as recorded in a
        :class:`repro.resilience.checkpoint.ConsistentCut`.
        """
        messenger = cls.__new__(cls)
        messenger.interp = Interp.from_snapshot(snapshot)
        messenger.name = messenger.interp.program
        messenger._pending = pending
        return messenger

    def main(self):
        interp = self.interp
        action = self._pending
        if action is None:
            action = interp.next_action(self.vars)
        else:
            self._pending = None
        while action is not None:
            self._last_action = action
            kind = action[0]
            if kind == "hop":
                yield self.hop(action[1])
            elif kind == "compute":
                _, kname, argvals, out, cost_kind = action
                kernel = get_kernel(kname)
                value = yield self.compute(
                    fn=lambda k=kernel, a=argvals: k.fn(*a),
                    flops=kernel.flops(*argvals),
                    kind=cost_kind,
                    note=kname,
                )
                interp.env[out] = value
            elif kind == "wait":
                yield self.wait_event(action[1], *action[2])
            elif kind == "signal":
                yield self.signal_event(action[1], *action[2],
                                        count=action[3])
            elif kind == "inject":
                yield self.inject(IRMessenger(action[1], action[2]))
            else:  # pragma: no cover - next_action is exhaustive
                raise ConfigurationError(f"unknown action {action!r}")
            action = interp.next_action(self.vars)


def run_ir_on_fabric(fabric, program: str, env: dict | None = None,
                     at=(0,)):
    """Inject an IR program at a place and run the fabric to completion."""
    fabric.inject(at, IRMessenger(program, env))
    return fabric.run()
