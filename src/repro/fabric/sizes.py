"""Modeled byte sizes of payloads.

Communication costs are charged against the *model* element size of the
machine spec (4 bytes for the paper's single-precision matrices), not
the in-memory size of the Python objects — the numerics may execute in
float64 for accuracy while costs stay faithful to the paper's data
volumes. Scalars and small control values are charged a flat overhead.

Two rulers live here:

* :func:`model_nbytes` / :func:`agent_nbytes` — the *model* sizes
  above, used by the simulated cost machinery. An array **view**
  charges its sliced elements only (``obj.size`` is the view's element
  count, never the base buffer's), matching what the codec ships.
* :func:`codec_nbytes` — the *codec-actual* serialized size, what the
  socket/process transports really put on the wire for an object
  (pickle frame plus out-of-band buffer bytes).
"""

from __future__ import annotations

import numpy as np

from ..machine.spec import MachineSpec
from ..util.shadow import ShadowArray
from .payload import encoded_nbytes

__all__ = ["model_nbytes", "agent_nbytes", "codec_nbytes"]

_SMALL_VALUE_BYTES = 16


def model_nbytes(obj, machine: MachineSpec) -> int:
    """Bytes the cost model charges for shipping ``obj``."""
    if obj is None:
        return 0
    if isinstance(obj, (np.ndarray, ShadowArray)):
        return obj.size * machine.elem_size
    if isinstance(obj, memoryview):
        # obj.nbytes, not len(obj): len() of a multi-dimensional or
        # wide-format view is its first-dimension length, which
        # undercharges (e.g. a float64 view by 8x)
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(model_nbytes(x, machine) for x in obj)
    if isinstance(obj, dict):
        return sum(
            model_nbytes(k, machine) + model_nbytes(v, machine)
            for k, v in obj.items()
        )
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    # ints, floats, bools, numpy scalars, small objects
    return _SMALL_VALUE_BYTES


def agent_nbytes(messenger, machine: MachineSpec) -> int:
    """Modeled size of a messenger's agent variables plus hop state.

    Agent variables are the messenger's public instance attributes
    (everything not starting with ``_``); runtime bookkeeping fields
    are kept private by convention and are not charged.
    """
    total = machine.hop_state_bytes
    for name, value in vars(messenger).items():
        if not name.startswith("_"):
            total += model_nbytes(value, machine)
    return total


def codec_nbytes(obj) -> int:
    """Codec-actual serialized size of ``obj`` (see
    :func:`repro.fabric.payload.encoded_nbytes`): the pickle frame plus
    every out-of-band buffer, which for a numpy view is the sliced
    bytes only — the base array is never shipped."""
    return encoded_nbytes(obj)
