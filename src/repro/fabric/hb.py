"""Dynamic happens-before (HB) race checking for fabric runs.

This is the runtime half of the race detector (the static half lives in
:mod:`repro.analysis.races`). Every messenger gets a *thread id* and a
vector clock; the fabric reports the four HB merge points of the NavP
execution model:

* **inject** — the child messenger is born with a copy of the parent's
  clock, so everything the parent did before the injection
  happens-before everything the child does (injection order);
* **hop arrival** — a hop carries the messenger's clock with the
  continuation, so pre-hop accesses at the source happen-before
  post-hop accesses at the destination (and the arrival opens a fresh
  epoch);
* **signal → wait** — each ``signalEvent`` enqueues a snapshot of the
  signaler's clock on a per-(place, event, args) FIFO, mirroring the
  counting-semaphore grant order; the waiter that consumes the signal
  merges that snapshot;
* **resource handoff** — releasing a CPU deposits the holder's clock on
  the resource; the next acquirer merges it (lock-style ordering).

Node-variable accesses are reported per *entry* (the normalized key an
interpreter actually touched); a whole-variable access (``NodeGet``
with no index) conflicts with every entry. Two accesses to the same
(place, variable, entry) race when neither's clock is ≤ the other's and
at least one is a write — exactly the FastTrack condition, and like
FastTrack the checker stores epochs ``(tid, counter)`` rather than full
clocks for the last write and the read set, so the per-access test is
O(1).

Resource-handoff edges order whatever the scheduler *happened* to
serialize, so a single run can hide a race behind an accidental CPU
handoff. That is why this checker is paired with the schedule fuzzer
(:mod:`repro.fabric.fuzz`): different seeds produce different handoff
orders, and a pair unordered by the protocol will surface on some seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["HBTracker", "Race", "RaceAccess", "InterpTap"]


@dataclass(frozen=True)
class RaceAccess:
    """One side of a detected race."""

    actor: str            # messenger instance name, e.g. "a-carrier#2"
    program: str | None   # IR program name (None for hand-written ones)
    site: tuple | None    # (body path, pc) inside the program, if known
    write: bool

    def describe(self) -> str:
        kind = "write" if self.write else "read"
        where = ""
        if self.program is not None:
            where = f" [{self.program}"
            if self.site is not None:
                path, pc = self.site
                where += f" @ {tuple(path) + (pc,)}"
            where += "]"
        return f"{kind} by {self.actor}{where}"


@dataclass(frozen=True)
class Race:
    """An unordered conflicting pair observed at runtime."""

    var: str
    key: object           # normalized entry key; None = whole variable
    place: int
    a: RaceAccess
    b: RaceAccess

    @property
    def kind(self) -> str:
        return "write-write" if (self.a.write and self.b.write) \
            else "read-write"

    def describe(self) -> str:
        entry = "" if self.key is None else f"[{self.key!r}]"
        return (f"{self.kind} race on {self.var}{entry} at place "
                f"{self.place}: {self.a.describe()} vs {self.b.describe()}")

    def signature(self) -> tuple:
        """Schedule-independent identity (for cross-seed/static dedup)."""
        sides = tuple(sorted(
            ((s.program or s.actor, s.site, s.write)
             for s in (self.a, self.b)),
            key=repr,  # sites mix int and (pc, branch) path steps
        ))
        return (self.var, sides)


class _Cell:
    """Access history of one (place, var, entry)."""

    __slots__ = ("write_epoch", "write_meta", "reads")

    def __init__(self):
        self.write_epoch: tuple | None = None   # (tid, counter)
        self.write_meta: RaceAccess | None = None
        self.reads: dict = {}                   # tid -> (counter, meta)


class HBTracker:
    """Vector clocks + per-entry access histories for one fabric run."""

    def __init__(self, now_fn=None, trace=None):
        self._clocks: dict[int, dict] = {}
        self._next_tid = 0
        self._signals: dict = {}     # event key -> deque of clock snapshots
        self._resources: dict = {}   # resource id -> clock
        self._cells: dict = {}       # (place, var) -> {entry: _Cell}
        self._seen: set = set()
        self.races: list[Race] = []
        self._now_fn = now_fn
        self._trace = trace if (trace is not None and trace.enabled) else None

    # -- thread lifecycle ---------------------------------------------------
    def new_thread(self, parent: int | None = None) -> int:
        """Register a messenger; inherits the injecting parent's clock."""
        tid = self._next_tid
        self._next_tid = tid + 1
        clock = {} if parent is None else dict(self._clocks[parent])
        clock[tid] = 1
        self._clocks[tid] = clock
        if parent is not None:
            self._tick(parent)
        return tid

    def _tick(self, tid: int) -> None:
        clock = self._clocks[tid]
        clock[tid] = clock.get(tid, 0) + 1

    # -- merge points -------------------------------------------------------
    def on_hop(self, tid: int) -> None:
        """Hop arrival: the clock traveled with the continuation; open a
        new epoch so source-side accesses stay strictly earlier."""
        self._tick(tid)

    def on_signal(self, tid: int, event_key, count: int = 1) -> None:
        queue = self._signals.get(event_key)
        if queue is None:
            queue = self._signals[event_key] = deque()
        snapshot = dict(self._clocks[tid])
        for _ in range(count):
            queue.append(snapshot)
        self._tick(tid)

    def prime(self, event_key, count: int = 1) -> None:
        """An initial (setup-time) signal: carries the empty clock."""
        queue = self._signals.get(event_key)
        if queue is None:
            queue = self._signals[event_key] = deque()
        for _ in range(count):
            queue.append({})

    def on_wait(self, tid: int, event_key) -> None:
        queue = self._signals.get(event_key)
        if queue:
            clock = self._clocks[tid]
            for other, counter in queue.popleft().items():
                if clock.get(other, 0) < counter:
                    clock[other] = counter
        self._tick(tid)

    def on_acquire(self, tid: int, resource_id) -> None:
        deposited = self._resources.get(resource_id)
        if deposited:
            clock = self._clocks[tid]
            for other, counter in deposited.items():
                if clock.get(other, 0) < counter:
                    clock[other] = counter

    def on_release(self, tid: int, resource_id) -> None:
        deposited = self._resources.get(resource_id)
        if deposited is None:
            deposited = self._resources[resource_id] = {}
        for other, counter in self._clocks[tid].items():
            if deposited.get(other, 0) < counter:
                deposited[other] = counter
        self._tick(tid)

    # -- accesses -----------------------------------------------------------
    def on_access(self, tid: int, place: int, var: str, key, write: bool,
                  meta: RaceAccess) -> None:
        """Record one node-variable access. ``key`` of None means the
        whole variable (conflicts with every entry)."""
        cells = self._cells.get((place, var))
        if cells is None:
            cells = self._cells[(place, var)] = {}
        if key is None:
            targets = list(cells.values())
            whole = cells.get(None)
            if whole is None:
                whole = cells[None] = _Cell()
                targets.append(whole)
            update = [whole]
        else:
            try:
                cell = cells[key]
            except KeyError:
                cell = cells[key] = _Cell()
            except TypeError:  # unhashable key — fold into whole-var
                return self.on_access(tid, place, var, None, write, meta)
            targets = [cell]
            whole = cells.get(None)
            if whole is not None:
                targets.append(whole)
            update = [cell]
        clock = self._clocks[tid]
        for cell in targets:
            self._check(cell, tid, clock, write, place, var, key, meta)
        epoch = (tid, clock.get(tid, 0))
        for cell in update:
            if write:
                cell.write_epoch = epoch
                cell.write_meta = meta
                cell.reads.clear()
            else:
                cell.reads[tid] = (epoch[1], meta)

    def _check(self, cell: _Cell, tid: int, clock: dict, write: bool,
               place: int, var: str, key, meta: RaceAccess) -> None:
        prior_write = cell.write_epoch
        if (prior_write is not None and prior_write[0] != tid
                and clock.get(prior_write[0], 0) < prior_write[1]):
            self._report(var, key, place, cell.write_meta, meta)
        if write:
            for other, (counter, read_meta) in cell.reads.items():
                if other != tid and clock.get(other, 0) < counter:
                    self._report(var, key, place, read_meta, meta)

    def _report(self, var: str, key, place: int,
                a: RaceAccess, b: RaceAccess) -> None:
        race = Race(var=var, key=key, place=place, a=a, b=b)
        signature = race.signature()
        if signature in self._seen:
            return
        self._seen.add(signature)
        self.races.append(race)
        if self._trace is not None:
            now = self._now_fn() if self._now_fn is not None else 0.0
            self._trace.record(
                t0=now, t1=now, place=place, actor=b.actor, kind="race",
                note=race.describe(),
            )


class InterpTap:
    """The bridge an IR interpreter reports node accesses through.

    :class:`~repro.navp.interp.Interp` calls :meth:`on_read` /
    :meth:`on_write` (and keeps :attr:`site` pointed at the statement it
    is executing) whenever its ``tracer`` attribute is set. The tap
    resolves the messenger's current place and thread id at access time
    — a hop may have moved the messenger since the tap was made — and
    optionally mirrors each access into the fabric's :class:`TraceLog`.
    """

    __slots__ = ("hb", "messenger", "program", "site")

    def __init__(self, hb: HBTracker, messenger, program: str | None):
        self.hb = hb
        self.messenger = messenger
        self.program = program
        self.site: tuple | None = None

    def _record(self, var: str, key, write: bool) -> None:
        messenger = self.messenger
        place = messenger._ctx.place.index
        meta = RaceAccess(
            actor=messenger._name, program=self.program,
            site=self.site, write=write,
        )
        hb = self.hb
        hb.on_access(messenger._tid, place, var, key, write, meta)
        trace = hb._trace
        if trace is not None:
            now = hb._now_fn() if hb._now_fn is not None else 0.0
            entry = "" if key is None else f"[{key!r}]"
            trace.record(
                t0=now, t1=now, place=place, actor=messenger._name,
                kind="access",
                note=f"{'W' if write else 'R'} {var}{entry}",
            )

    def on_read(self, var: str, key) -> None:
        self._record(var, key, False)

    def on_write(self, var: str, key) -> None:
        self._record(var, key, True)
