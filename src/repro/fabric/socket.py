"""SocketFabric: PEs as worker processes behind a real TCP transport.

The fourth fabric kind. Workers are the same OS processes (and the
same :class:`~repro.fabric.controller.WorkerCore` execution engine) as
:class:`~repro.fabric.process.ProcessFabric`, but every byte between
them travels over real 127.0.0.1 TCP connections speaking the framed
protocol of :mod:`repro.fabric.wire` — the closest this reproduction
gets to the paper's MESSENGERS daemons exchanging messengers over
Ethernet. Robustness is the core of the design:

**Failure detection.** Every worker streams heartbeat frames to the
controller; a per-worker phi-accrual detector turns inter-arrival
statistics into a suspicion score (``phi ~ -log10 P(alive)``), so a
SIGKILLed or wedged worker is *detected by heartbeat loss* rather than
trusted process handles. Connection EOF counts as heartbeat loss.

**Generations.** Each (host, respawn) pair has a connection-generation
number carried in every frame header. The controller bumps it before
respawning, and both sides drop frames from stale generations — a
zombie socket of a replaced worker cannot deliver.

**Reconnection.** Workers connect (and reconnect) with jittered
exponential backoff (:meth:`RecoveryPolicy.jittered_delays`), so peers
that fail together do not retry in lockstep.

**Backpressure.** Flow control is credit-based: a sender may have at
most ``window`` unacknowledged continuation frames toward any one
receiver, and a receiver returns one credit each time a frame leaves
its mailbox. A slow PE therefore *blocks its upstream sender* instead
of growing an unbounded queue — observable as a bounded
``inbox_hwm`` in the per-worker ``transport`` trace events
(:meth:`~repro.fabric.trace.TraceLog.mailbox_hwm`).

**Deadlines.** With ``hop_deadline_s`` set, every continuation frame
carries an absolute deadline in its header; receivers count late
arrivals (soft deadlines: the frame is still delivered), surfaced via
:meth:`~repro.fabric.trace.TraceLog.deadline_misses`.

**Recovery.** In resilient mode (a fault plan, ``supervise=True`` or
``checkpoint_every``), hops route through the controller, which
journals them per destination in the shared
:class:`~repro.resilience.recovery.ReplayLedger`, takes quiescent
per-host checkpoints, and — on heartbeat loss — respawns the worker,
restores its last checkpoint, and replays the journal; ``(messenger
id, hop count)`` dedup in the worker makes the at-least-once replay
exactly-once. ``FaultPlan`` message faults act at the wire layer
(frames are really dropped, duplicated, delayed) and crashes are real
``SIGKILL``\\ s. Drops with recovery disabled are casualties, reported
in the :class:`~repro.errors.DeadlockError` like ThreadFabric's.

Plain mode (no plan, no supervision) skips the controller detour:
workers learn each other's addresses at start-up and ship hops
peer-to-peer, with the same credit-based flow control per connection.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import pickle
import queue
import signal
import socket as socket_mod
import threading
import time
from collections import defaultdict, deque

from ..errors import DeadlockError, FabricError
from ..navp.interp import Interp
from ..resilience.faults import STATS as FAULT_STATS
from ..resilience.faults import PlanRuntime
from ..resilience.recovery import RecoveryPolicy
from .controller import ControllerFabric, WorkerCore, hop_fault_verdict
from .sim import FabricResult
from .wire import (FRAME_CMD, FRAME_CREDIT, FRAME_HEARTBEAT, FRAME_HELLO,
                   FRAME_REPORT, FRAME_RUN, FrameSocket, WireClosed,
                   WireError, frame_nbytes)

__all__ = ["SocketFabric", "PhiAccrualDetector"]


def _connect_with_backoff(addr, seed=None) -> socket_mod.socket:
    """Dial ``addr``, retrying with jittered exponential backoff."""
    policy = RecoveryPolicy(max_retries=6, backoff_s=0.02)
    last = None
    for delay in [0.0] + policy.jittered_delays(seed):
        if delay:
            time.sleep(delay)
        try:
            sock = socket_mod.create_connection(tuple(addr), timeout=5.0)
            sock.settimeout(None)
            return sock
        except OSError as exc:
            last = exc
    raise WireClosed(f"cannot connect to {addr}: {last}")


class PhiAccrualDetector:
    """Suspicion score over heartbeat inter-arrival times.

    Exponential model: with mean inter-arrival ``m``, the probability
    that a live peer stays silent for ``t`` seconds is ``exp(-t/m)``,
    so ``phi = t / (m ln 10)`` is ``-log10`` of that probability —
    phi 1 means "90% dead", phi 8 "dead to 8 nines". The mean is an
    EWMA so the detector adapts to the observed beat cadence.
    """

    __slots__ = ("mean", "last")

    def __init__(self, now: float, expected: float):
        self.mean = max(expected, 1e-3)
        self.last = now

    def beat(self, now: float) -> None:
        interval = now - self.last
        self.last = now
        self.mean = max(0.8 * self.mean + 0.2 * interval, 1e-3)

    def phi(self, now: float) -> float:
        return (now - self.last) / (self.mean * math.log(10.0))


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------

def _sock_worker(host, coords, host_of, ctl_addr, gen, resilient, tracing,
                 window, heartbeat_s, hop_deadline_s, backoff_seed):
    """One host process: a :class:`WorkerCore` behind TCP.

    Controller commands arrive as CMD frames on the controller
    connection; peer continuations (plain mode) as RUN frames on
    accepted peer connections. Every RUN/``run`` arrival is paid back
    with one credit when it leaves the mailbox.
    """
    stats = {"inbox_hwm": 0, "window": window, "frames_in": 0,
             "bytes_in": 0, "frames_out": 0, "bytes_out": 0,
             "late": 0, "credit_waits": 0}
    inbox: queue.Queue = queue.Queue()
    stop_evt = threading.Event()
    peers_ready = threading.Event()
    depth_lock = threading.Lock()
    depth = [0]
    hop_log: list = []

    ctl = FrameSocket(_connect_with_backoff(ctl_addr, backoff_seed))
    peer_listener = None
    my_addr = None
    peer_table: dict = {}     # host -> (ip, port), from the controller
    credit_back: dict = {}    # src host -> inbound FrameSocket
    peers_out: dict = {}      # dst host -> (FrameSocket, credit semaphore)

    if not resilient:
        peer_listener = socket_mod.socket(
            socket_mod.AF_INET, socket_mod.SOCK_STREAM)
        peer_listener.bind(("127.0.0.1", 0))
        peer_listener.listen(16)
        my_addr = peer_listener.getsockname()

    ctl.send(FRAME_HELLO, pickle.dumps(("hello", host, my_addr)), gen=gen)

    def note_arrival(nbytes: int, deadline: float) -> None:
        stats["frames_in"] += 1
        stats["bytes_in"] += nbytes
        if deadline and time.time() > deadline:
            stats["late"] += 1
        with depth_lock:
            depth[0] += 1
            if depth[0] > stats["inbox_hwm"]:
                stats["inbox_hwm"] = depth[0]

    def took_from_mailbox() -> None:
        with depth_lock:
            depth[0] -= 1

    def ctl_reader():
        while True:
            try:
                frame = ctl.recv()
            except WireError:
                inbox.put(("eof",))
                return
            if frame.kind != FRAME_CMD:
                continue
            cmd = pickle.loads(frame.payload)
            if cmd[0] == "run":
                note_arrival(frame_nbytes(frame.payload), frame.deadline)
                inbox.put(("crun", cmd))
            elif cmd[0] == "peers":
                # applied here, not in the main loop: a peer's first RUN
                # frame can arrive while the main loop is busy, and its
                # onward hop must not find an empty routing table
                peer_table.update(cmd[1])
                peers_ready.set()
            else:
                inbox.put(("cmd", cmd))

    def peer_reader(fs: FrameSocket):
        src = None
        while True:
            try:
                frame = fs.recv()
            except WireError:
                return
            if frame.kind == FRAME_HELLO:
                src = pickle.loads(frame.payload)[1]
                credit_back[src] = fs
            elif frame.kind == FRAME_RUN:
                note_arrival(frame_nbytes(frame.payload), frame.deadline)
                inbox.put(("prun", pickle.loads(frame.payload), src))

    def out_reader(fs: FrameSocket, credits: threading.Semaphore):
        while True:
            try:
                frame = fs.recv()
            except WireError:
                return
            if frame.kind == FRAME_CREDIT:
                credits.release()

    def accept_loop():
        while True:
            try:
                conn, _ = peer_listener.accept()
            except OSError:
                return
            threading.Thread(target=peer_reader,
                             args=(FrameSocket(conn),),
                             daemon=True).start()

    def heartbeat_loop():
        while not stop_evt.wait(heartbeat_s):
            try:
                ctl.send(FRAME_HEARTBEAT, b"", gen=gen)
            except WireError:
                return

    threading.Thread(target=ctl_reader, daemon=True).start()
    if peer_listener is not None:
        threading.Thread(target=accept_loop, daemon=True).start()
    threading.Thread(target=heartbeat_loop, daemon=True).start()

    def get_peer(dst):
        entry = peers_out.get(dst)
        if entry is None:
            if not peers_ready.wait(timeout=20.0):
                raise WireError(f"host {host}: no peer table within 20s")
            fs = FrameSocket(
                _connect_with_backoff(peer_table[dst], backoff_seed))
            fs.send(FRAME_HELLO, pickle.dumps(("hello", host, None)),
                    gen=gen)
            credits = threading.Semaphore(window)
            threading.Thread(target=out_reader, args=(fs, credits),
                             daemon=True).start()
            entry = peers_out[dst] = (fs, credits)
        return entry

    def emit_report(msg):
        if msg[0] == "vars":
            ctl.send(FRAME_REPORT,
                     pickle.dumps(("stats", host, dict(stats))), gen=gen)
            if tracing and hop_log:
                ctl.send(FRAME_REPORT,
                         pickle.dumps(("hoplog", host, hop_log)), gen=gen)
        n = ctl.send(FRAME_REPORT, pickle.dumps(msg), gen=gen)
        if msg[0] == "hop":
            stats["frames_out"] += 1
            stats["bytes_out"] += n

    def emit_hop(dst, payload):
        if resilient:
            emit_report(("hop", host, dst, payload))
            return
        fs, credits = get_peer(dst)
        if not credits.acquire(blocking=False):
            # window exhausted: the receiver's mailbox is full — block
            # until it hands a credit back (this IS the backpressure)
            stats["credit_waits"] += 1
            if not credits.acquire(timeout=60.0):
                raise WireError(
                    f"host {host}: no credit from host {dst} in 60s")
        deadline = time.time() + hop_deadline_s if hop_deadline_s else 0.0
        n = fs.send(FRAME_RUN, pickle.dumps(payload), gen=gen,
                    deadline=deadline)
        stats["frames_out"] += 1
        stats["bytes_out"] += n
        if tracing:
            hop_log.append((host, dst, n, payload[0]))

    core = WorkerCore(host, coords, host_of, emit_hop, emit_report,
                      dedup=resilient)
    try:
        while True:
            if core.ready:
                core.step()
                continue
            item = inbox.get()
            tag = item[0]
            if tag == "cmd":
                if item[1][0] == "sync":
                    # setup barrier: by per-connection FIFO, every
                    # earlier controller command is already applied
                    ctl.send(FRAME_REPORT,
                             pickle.dumps(("synced", host)), gen=gen)
                elif core.handle(item[1]) == "stop":
                    break
            elif tag == "crun":
                took_from_mailbox()
                ctl.send(FRAME_REPORT,
                         pickle.dumps(("credit", host)), gen=gen)
                core.handle(item[1])
            elif tag == "prun":
                took_from_mailbox()
                back = credit_back.get(item[2])
                if back is not None:
                    try:
                        back.send(FRAME_CREDIT, b"", gen=gen)
                    except WireError:  # pragma: no cover - peer gone
                        pass
                core.handle(("run", item[1]))
            elif tag == "eof":
                break  # controller went away; nothing left to serve
    except BaseException as exc:  # noqa: BLE001 - forwarded to controller
        try:
            ctl.send(FRAME_REPORT, pickle.dumps(
                ("error", host, f"{type(exc).__name__}: {exc}")), gen=gen)
        except WireError:  # pragma: no cover - controller also gone
            pass
    finally:
        stop_evt.set()
        if peer_listener is not None:
            peer_listener.close()
        for fs, _credits in peers_out.values():
            fs.close()
        ctl.close()


# ----------------------------------------------------------------------
# Controller
# ----------------------------------------------------------------------

class SocketFabric(ControllerFabric):
    """TCP executor for IR messengers (see the module docstring)."""

    kind = "socket"

    def __init__(self, topology, machine=None, timeout: float = 120.0,
                 hosts=None, faults=None, recovery=True,
                 checkpoint_every: int | None = None, max_restarts: int = 2,
                 supervise: bool | None = None, trace: bool = False,
                 window: int = 32, heartbeat_s: float = 0.025,
                 phi_threshold: float = 12.0,
                 hop_deadline_s: float | None = None):
        super().__init__(topology, machine, timeout, hosts, faults,
                         recovery, checkpoint_every, max_restarts,
                         supervise, trace)
        if window < 1:
            raise FabricError("flow-control window must be >= 1")
        self._ctx = mp.get_context("fork")
        self.window = window
        self.heartbeat_s = heartbeat_s
        self.phi_threshold = phi_threshold
        self.hop_deadline_s = hop_deadline_s
        self.lost: list = []            # casualties (drops, no recovery)
        self.stale_frames = 0           # dropped stale-generation frames
        self._gens: dict = defaultdict(int)     # host -> generation
        self._conns: dict = {}                  # host -> FrameSocket
        self._procs: dict = {}                  # host -> Process
        self._peer_addrs: dict = {}             # host -> (ip, port)
        self._detectors: dict = {}              # host -> PhiAccrualDetector
        self._hello_evts: dict = {}             # (host, gen) -> Event
        self._reports: queue.Queue = queue.Queue()
        self._reg_lock = threading.Lock()
        self._listener = None
        self._addr = None

    # -- connection plumbing ------------------------------------------
    def _serve_conn(self, fs: FrameSocket) -> None:
        """Handshake one inbound connection, then pump its frames."""
        try:
            hello = fs.recv()
        except WireError:
            fs.close()
            return
        if hello.kind != FRAME_HELLO:
            fs.close()
            return
        _tag, host, peer_addr = pickle.loads(hello.payload)
        with self._reg_lock:
            if hello.gen != self._gens[host]:
                self.stale_frames += 1  # a replaced worker's socket
                fs.close()
                return
            self._conns[host] = fs
            if peer_addr is not None:
                self._peer_addrs[host] = tuple(peer_addr)
            self._detectors[host] = PhiAccrualDetector(
                time.monotonic(), self.heartbeat_s)
            evt = self._hello_evts.get((host, hello.gen))
            if evt is not None:
                evt.set()
        while True:
            try:
                frame = fs.recv()
            except WireError:
                self._reports.put(("gone", host, hello.gen))
                return
            if frame.gen != self._gens[host]:
                self.stale_frames += 1
                continue
            if frame.kind == FRAME_HEARTBEAT:
                det = self._detectors.get(host)
                if det is not None:
                    det.beat(time.monotonic())
            elif frame.kind == FRAME_REPORT:
                self._reports.put(
                    ("report", host, pickle.loads(frame.payload)))

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            threading.Thread(target=self._serve_conn,
                             args=(FrameSocket(conn),),
                             daemon=True).start()

    def _send_cmd(self, host, cmd, deadline: float = 0.0) -> int:
        """Frame one command to a worker; returns the on-wire size.

        A dead worker's connection may already be broken — that is not
        an error here (the heartbeat detector owns failure handling and
        the journal owns redelivery), so failed sends report size 0.
        """
        fs = self._conns.get(host)
        if fs is None:
            return 0
        try:
            return fs.send(FRAME_CMD, pickle.dumps(cmd),
                           gen=self._gens[host], deadline=deadline)
        except WireError:
            return 0

    def _spawn(self, host, coords_of_host, programs) -> None:
        gen = self._gens[host]
        evt = threading.Event()
        self._hello_evts[(host, gen)] = evt
        proc = self._ctx.Process(
            target=_sock_worker,
            args=(host, coords_of_host[host], self._host_of, self._addr,
                  gen, self.resilient, self.trace.enabled, self.window,
                  self.heartbeat_s, self.hop_deadline_s,
                  (self._plan.seed or 0) * 31 + host),
            daemon=True, name=f"sockhost{host}",
        )
        proc.start()
        self._procs[host] = proc
        if not evt.wait(timeout=20.0):
            raise FabricError(
                f"socket worker {host} did not say hello within 20s")
        self._send_cmd(host, ("register", programs))

    # -- execution -----------------------------------------------------
    def run(self) -> FabricResult:
        if not self._initial:
            raise FabricError("no messengers injected")
        self._listener = socket_mod.socket(
            socket_mod.AF_INET, socket_mod.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(self.n_hosts + 4)
        self._addr = self._listener.getsockname()
        threading.Thread(target=self._accept_loop, daemon=True).start()
        try:
            if self.resilient:
                return self._run_resilient()
            return self._run_plain()
        finally:
            self._shutdown()

    def _shutdown(self) -> None:
        for host in list(self._conns):
            self._send_cmd(host, ("stop",))
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        for proc in self._procs.values():
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
        for fs in self._conns.values():
            fs.close()

    def _record_hop(self, now, src, dst, nbytes, mid) -> None:
        self.trace.record(t0=now, t1=now, place=dst, actor=mid,
                          kind="hop", note="hop", src_place=src,
                          nbytes=nbytes)

    def _record_transport(self, now, host, stats) -> None:
        note = " ".join(f"{k}={v}" for k, v in sorted(stats.items()))
        self.trace.record(t0=now, t1=now, place=host, actor="transport",
                          kind="transport", note=note)

    def _check_heartbeats(self, dead_gens: set) -> list:
        """Hosts currently suspected dead (heartbeat loss or EOF)."""
        now = time.monotonic()
        suspects = []
        for host, det in list(self._detectors.items()):
            if (host, self._gens[host]) in dead_gens:
                suspects.append((host, float("inf")))
            elif det.phi(now) > self.phi_threshold:
                suspects.append((host, det.phi(now)))
        return suspects

    def _run_plain(self) -> FabricResult:
        t0 = time.perf_counter()
        tracing = self.trace.enabled
        coords = list(self.topology.coords)
        coords_of_host = {
            h: [c for c in coords if self._host_of[c] == h]
            for h in range(self.n_hosts)
        }
        programs = list(self._programs.values())
        for h in range(self.n_hosts):
            self._spawn(h, coords_of_host, programs)
        peer_table = {h: self._peer_addrs[h] for h in range(self.n_hosts)}
        for h in range(self.n_hosts):
            self._send_cmd(h, ("peers", peer_table))
        for c in coords:
            if self._loads[c]:
                self._send_cmd(self._host_of[c], ("load", c, self._loads[c]))
        for coord, name, args, count in self._signals:
            self._send_cmd(self._host_of[coord],
                           ("signal0", (coord, name, args, count)))

        # Setup barrier: peer-to-peer RUN frames ride separate
        # connections from controller commands, so without this a hop
        # could execute at a worker before its loads arrived.
        for h in range(self.n_hosts):
            self._send_cmd(h, ("sync",))
        synced: set = set()
        sync_deadline = time.monotonic() + self.timeout
        while len(synced) < self.n_hosts:
            remaining = sync_deadline - time.monotonic()
            if remaining <= 0:
                raise FabricError(
                    f"socket fabric setup barrier timed out "
                    f"({self.n_hosts - len(synced)} host(s) silent)")
            try:
                kind, host, msg = self._reports.get(
                    timeout=min(remaining, 0.5))
            except queue.Empty:
                continue
            if kind == "report" and msg[0] == "synced":
                synced.add(msg[1])
            elif kind == "report" and msg[0] == "error":
                raise FabricError(f"worker {msg[1]} failed: {msg[2]}")

        known: set = set()
        done: set = set()
        for coord, name, env in self._initial:
            mid = f"m{self._counter}"
            self._counter += 1
            known.add(mid)
            self._send_cmd(self._host_of[coord], ("run", (
                mid, [], 0, coord,
                Interp(name, env).agent_snapshot(), 0,
            )))

        dead_gens: set = set()
        deadline = time.monotonic() + self.timeout
        while not known <= done:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlockError(
                    f"socket fabric timed out; "
                    f"{len(known - done)} messenger(s) unaccounted")
            suspects = self._check_heartbeats(dead_gens)
            if suspects:
                host, phi = suspects[0]
                raise FabricError(
                    f"socket worker {host} lost (heartbeat silence, "
                    f"phi={phi:.1f}) and this run has no supervision; "
                    f"pass supervise=True or a fault plan for recovery")
            try:
                kind, host, msg = self._reports.get(
                    timeout=min(remaining, 0.1))
            except queue.Empty:
                continue
            if kind == "gone":
                dead_gens.add((host, msg))
                continue
            if msg[0] == "error":
                raise FabricError(f"worker {msg[1]} failed: {msg[2]}")
            if msg[0] == "done":
                done.add(msg[1])
                known.update(msg[2])

        for h in range(self.n_hosts):
            self._send_cmd(h, ("collect",))
        places = self._collect(tracing, t0)
        return FabricResult(time=time.perf_counter() - t0,
                            trace=self.trace, places=places)

    def _collect(self, tracing, t0) -> dict:
        """Gather vars (+ transport stats and plain-mode hop logs)."""
        places: dict = {}
        hosts_seen: set = set()
        deadline = time.monotonic() + self.timeout
        while len(hosts_seen) < self.n_hosts:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlockError(
                    f"socket fabric timed out collecting results "
                    f"({self.n_hosts - len(hosts_seen)} host(s) missing)")
            try:
                kind, host, msg = self._reports.get(
                    timeout=min(remaining, 0.5))
            except queue.Empty:
                continue
            if kind == "gone":
                continue
            now = time.perf_counter() - t0
            if msg[0] == "error":
                raise FabricError(f"worker {msg[1]} failed: {msg[2]}")
            if msg[0] == "stats":
                if tracing:
                    self._record_transport(now, msg[1], msg[2])
            elif msg[0] == "hoplog":
                if tracing:
                    for src, dst, nbytes, mid in msg[2]:
                        self._record_hop(now, src, dst, nbytes, mid)
            elif msg[0] == "vars":
                hosts_seen.add(msg[1])
                places.update(msg[2])
        return places

    def _run_resilient(self) -> FabricResult:
        t0 = time.perf_counter()
        runtime = PlanRuntime(self._plan, self._resolve_host)
        sup = self._sup
        tracing = self.trace.enabled
        coords = list(self.topology.coords)
        coords_of_host = {
            h: [c for c in coords if self._host_of[c] == h]
            for h in range(self.n_hosts)
        }
        programs = list(self._programs.values())

        # Credit gate: at most `window` un-credited run commands toward
        # each worker; excess waits in a pending queue. The worker
        # returns one credit per run command leaving its mailbox.
        gate_out: dict = defaultdict(int)
        gate_pend: dict = defaultdict(deque)

        def emit_run(h, cmd):
            gate_out[h] += 1
            dl = time.time() + self.hop_deadline_s \
                if self.hop_deadline_s else 0.0
            self._send_cmd(h, cmd, deadline=dl)

        def gate_send(h, cmd, journal=True):
            if journal:
                sup.journal(h, cmd)
            if gate_out[h] < self.window and not gate_pend[h]:
                emit_run(h, cmd)
            else:
                gate_pend[h].append(cmd)

        def on_credit(h):
            if gate_pend[h]:
                emit_run(h, gate_pend[h].popleft())
                gate_out[h] -= 1
            elif gate_out[h] > 0:
                gate_out[h] -= 1

        def send(h, cmd):
            """Journal + deliver a non-run setup command."""
            sup.journal(h, cmd)
            self._send_cmd(h, cmd)

        dead_gens: set = set()

        def respawn(h):
            sup.authorize_respawn(h)
            FAULT_STATS["masked"] += 1
            old = self._procs.get(h)
            self._gens[h] += 1  # stale sockets can't deliver from here on
            conn = self._conns.pop(h, None)
            if conn is not None:
                conn.close()
            self._detectors.pop(h, None)
            if old is not None:
                if old.is_alive():
                    old.terminate()
                old.join(timeout=5.0)
            self._spawn(h, coords_of_host, programs)
            state, replay = sup.recovery_script(h)
            if state is not None:
                self._send_cmd(h, ("restore", state))
            gate_out[h] = 0
            gate_pend[h].clear()  # every pending cmd is in the journal
            for cmd in replay:
                if cmd[0] == "run":
                    gate_send(h, cmd, journal=False)
                else:
                    self._send_cmd(h, cmd)
            if tracing:
                now = time.perf_counter() - t0
                self.trace.record(
                    t0=now, t1=now, place=h, actor="supervisor",
                    kind="respawn",
                    note=f"worker {h} respawned "
                         f"(restart {self.restarts[h]}, gen "
                         f"{self._gens[h]}, replay {len(replay)} cmd(s))")

        def checkpoint_all():
            cid = sup.begin_checkpoint(range(self.n_hosts))
            for h in range(self.n_hosts):
                self._send_cmd(h, ("ckpt", cid))

        for h in range(self.n_hosts):
            self._spawn(h, coords_of_host, programs)
        for c in coords:
            if self._loads[c]:
                send(self._host_of[c], ("load", c, self._loads[c]))
        for coord, name, args, count in self._signals:
            send(self._host_of[coord],
                 ("signal0", (coord, name, args, count)))
        known: set = set()
        done: set = set()
        for coord, name, env in self._initial:
            mid = f"m{self._counter}"
            self._counter += 1
            known.add(mid)
            gate_send(self._host_of[coord], ("run", (
                mid, [], 0, coord,
                Interp(name, env).agent_snapshot(), 0,
            )))

        deadline = time.monotonic() + self.timeout
        while not known <= done:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                casualties = (
                    "; fault injection destroyed messenger(s) with "
                    "recovery disabled: " + ", ".join(self.lost)
                    if self.lost else ""
                )
                raise DeadlockError(
                    f"socket fabric timed out; "
                    f"{len(known - done)} messenger(s) unaccounted "
                    f"({sum(self.restarts.values())} respawn(s))"
                    f"{casualties}")
            # fire due crash specs: a crash is a real SIGKILL
            if runtime.pending_crashes():
                now = time.perf_counter() - t0
                for spec, h in runtime.due_crashes(now):
                    proc = self._procs[h]
                    if proc.is_alive():
                        FAULT_STATS["fired"] += 1
                        os.kill(proc.pid, signal.SIGKILL)
                        if tracing:
                            self.trace.record(
                                t0=now, t1=now, place=h,
                                actor="fault-injector", kind="fault",
                                note=f"worker {h} SIGKILLed")
            # failure detection is heartbeat-based: respawn suspects
            for h, _phi in self._check_heartbeats(dead_gens):
                respawn(h)
            try:
                kind, host, msg = self._reports.get(
                    timeout=min(remaining, 0.05))
            except queue.Empty:
                continue
            if kind == "gone":
                dead_gens.add((host, msg))
                continue
            op = msg[0]
            if op == "error":
                raise FabricError(f"worker {msg[1]} failed: {msg[2]}")
            if op == "done":
                done.add(msg[1])
                known.update(msg[2])
            elif op == "credit":
                on_credit(msg[1])
            elif op == "hop":
                _, src_host, dst_host, payload = msg
                verdict, spec = hop_fault_verdict(
                    runtime, dst_host, self._recovery.enabled)
                now = time.perf_counter() - t0
                if verdict == "lost":
                    FAULT_STATS["fired"] += 1
                    FAULT_STATS["lost"] += 1
                    self.lost.append(payload[0])
                    if tracing:
                        self.trace.record(
                            t0=now, t1=now, place=dst_host,
                            actor=payload[0], kind="fault",
                            note="hop frame dropped (lost)",
                            src_place=src_host,
                            nbytes=frame_nbytes(pickle.dumps(payload)))
                    continue  # the continuation is gone
                if verdict == "retransmit":
                    FAULT_STATS["fired"] += 1
                    FAULT_STATS["masked"] += 1
                    if tracing:
                        self.trace.record(
                            t0=now, t1=now, place=dst_host,
                            actor=payload[0], kind="fault",
                            note="hop frame dropped (retransmitting)",
                            src_place=src_host)
                        self.trace.record(
                            t0=now, t1=now, place=dst_host,
                            actor=payload[0], kind="retry",
                            note="hop frame redelivered",
                            src_place=src_host)
                elif verdict == "duplicate":
                    FAULT_STATS["fired"] += 1
                    FAULT_STATS["masked"] += 1
                    if tracing:
                        self.trace.record(
                            t0=now, t1=now, place=dst_host,
                            actor=payload[0], kind="fault",
                            note="hop frame duplicated (dedup masks)",
                            src_place=src_host)
                    gate_send(dst_host, ("run", payload))  # extra copy
                elif verdict == "delay":
                    FAULT_STATS["fired"] += 1
                    FAULT_STATS["masked"] += 1
                    if tracing:
                        self.trace.record(
                            t0=now, t1=now, place=dst_host,
                            actor=payload[0], kind="fault",
                            note=f"hop frame delayed {spec.seconds}s",
                            src_place=src_host)
                    time.sleep(min(spec.seconds, 0.1))
                gate_send(dst_host, ("run", payload))
                if tracing:
                    self._record_hop(
                        now, src_host, dst_host,
                        frame_nbytes(pickle.dumps(payload)), payload[0])
                sup.note_forward()
                if (self._checkpoint_every is not None
                        and sup.forwards_since_ckpt
                        >= self._checkpoint_every):
                    checkpoint_all()
            elif op == "ckpt":
                _, h, cid, state = msg
                sup.commit_checkpoint(h, cid, state)
                if tracing:
                    now = time.perf_counter() - t0
                    self.trace.record(
                        t0=now, t1=now, place=h, actor="supervisor",
                        kind="checkpoint", note=f"ckpt {cid}")

        for h in range(self.n_hosts):
            self._send_cmd(h, ("collect",))
        places = self._collect_resilient(tracing, t0, on_credit)
        return FabricResult(time=time.perf_counter() - t0,
                            trace=self.trace, places=places)

    def _collect_resilient(self, tracing, t0, on_credit) -> dict:
        places: dict = {}
        hosts_seen: set = set()
        deadline = time.monotonic() + self.timeout
        while len(hosts_seen) < self.n_hosts:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlockError(
                    f"socket fabric timed out collecting results "
                    f"({self.n_hosts - len(hosts_seen)} host(s) missing)")
            try:
                kind, host, msg = self._reports.get(
                    timeout=min(remaining, 0.5))
            except queue.Empty:
                continue
            if kind == "gone":
                continue
            now = time.perf_counter() - t0
            if msg[0] == "error":
                raise FabricError(f"worker {msg[1]} failed: {msg[2]}")
            if msg[0] == "credit":
                on_credit(msg[1])
            elif msg[0] == "stats":
                if tracing:
                    self._record_transport(now, msg[1], msg[2])
            elif msg[0] == "vars":
                hosts_seen.add(msg[1])
                places.update(msg[2])
        return places
