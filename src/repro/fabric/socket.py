"""SocketFabric: PEs as worker processes behind a real TCP transport.

The fourth fabric kind. Workers are the same OS processes (and the
same :class:`~repro.fabric.controller.WorkerCore` execution engine) as
:class:`~repro.fabric.process.ProcessFabric`, but every byte between
them travels over real 127.0.0.1 TCP connections speaking the framed
protocol of :mod:`repro.fabric.wire` — the closest this reproduction
gets to the paper's MESSENGERS daemons exchanging messengers over
Ethernet. Robustness is the core of the design:

**Failure detection.** Every worker streams heartbeat frames to the
controller; a per-worker phi-accrual detector turns inter-arrival
statistics into a suspicion score (``phi ~ -log10 P(alive)``), so a
SIGKILLed or wedged worker is *detected by heartbeat loss* rather than
trusted process handles. Connection EOF counts as heartbeat loss.

**Generations.** Each (host, respawn) pair has a connection-generation
number carried in every frame header. The controller bumps it before
respawning, and both sides drop frames from stale generations — a
zombie socket of a replaced worker cannot deliver.

**Reconnection.** Workers connect (and reconnect) with jittered
exponential backoff (:meth:`RecoveryPolicy.jittered_delays`), so peers
that fail together do not retry in lockstep.

**Backpressure.** Flow control is credit-based: a sender may have at
most ``window`` unacknowledged continuation *hops* toward any one
receiver, and a receiver returns one credit each time a hop leaves
its mailbox. A slow PE therefore *blocks its upstream sender* instead
of growing an unbounded queue — observable as a bounded
``inbox_hwm`` in the per-worker ``transport`` trace events
(:meth:`~repro.fabric.trace.TraceLog.mailbox_hwm`).

**Zero-copy payloads.** Every pickled frame body goes through
:mod:`repro.fabric.payload`: matrix blocks ship as out-of-band buffer
segments of a multi-buffer frame (scatter/gather send, ``recv_into``
receive), so a hop never copies its blocks into a contiguous blob on
either side.

**Hop coalescing.** Hops toward the same destination that are emitted
back-to-back (a burst of ready carriers) batch into one RUN frame, up
to ``coalesce`` hops per frame, under the same credit window — one
credit per hop, so the receiver mailbox bound is unchanged. A batch is
flushed when it reaches ``coalesce`` hops, when the sender's credit
window is exhausted, when ``coalesce_delay_s`` elapses with hops
pending, or when the worker goes idle (the barrier flush: a worker
never blocks on its inbox with hops still buffered, so coalescing can
delay a frame only while the sender is busy producing more). In
resilient mode the controller's :class:`~repro.fabric.controller.
CreditGate` does the batching; the journal stays per-hop, so replay
after a crash re-coalesces deterministically.

**Deadlines.** With ``hop_deadline_s`` set, every continuation frame
carries an absolute deadline in its header; receivers count late
arrivals per hop (soft deadlines: the frame is still delivered),
surfaced via :meth:`~repro.fabric.trace.TraceLog.deadline_misses`.

**Recovery.** In resilient mode (a fault plan, ``supervise=True`` or
``checkpoint_every``), hops route through the controller, which
journals them per destination in the shared
:class:`~repro.resilience.recovery.ReplayLedger`, takes quiescent
per-host checkpoints, and — on heartbeat loss — respawns the worker,
restores its last checkpoint, and replays the journal; ``(messenger
id, hop count)`` dedup in the worker makes the at-least-once replay
exactly-once. ``FaultPlan`` message faults act at the wire layer
(frames are really dropped, duplicated, delayed) and crashes are real
``SIGKILL``\\ s. Drops with recovery disabled are casualties, reported
in the :class:`~repro.errors.DeadlockError` like ThreadFabric's.

Plain mode (no plan, no supervision) skips the controller detour:
workers learn each other's addresses at start-up and ship hops
peer-to-peer, with the same credit-based flow control per connection.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import queue
import signal
import socket as socket_mod
import threading
import time
from collections import defaultdict

from ..errors import DeadlockError, FabricError
from ..navp.interp import Interp
from ..resilience.faults import STATS as FAULT_STATS
from ..resilience.faults import PlanRuntime
from ..resilience.recovery import RecoveryPolicy
from . import payload as payload_mod
from .controller import (ControllerFabric, CreditGate, WorkerCore,
                         hop_fault_verdict, reap_workers)
from .sim import FabricResult
from .wire import (FRAME_CMD, FRAME_CREDIT, FRAME_HEARTBEAT, FRAME_HELLO,
                   FRAME_REPORT, FRAME_RUN, FrameSocket, WireClosed,
                   WireError, frame_nbytes)

__all__ = ["SocketFabric", "PhiAccrualDetector"]


def _connect_with_backoff(addr, seed=None) -> socket_mod.socket:
    """Dial ``addr``, retrying with jittered exponential backoff."""
    policy = RecoveryPolicy(max_retries=6, backoff_s=0.02)
    last = None
    for delay in [0.0] + policy.jittered_delays(seed):
        if delay:
            time.sleep(delay)
        try:
            sock = socket_mod.create_connection(tuple(addr), timeout=5.0)
            sock.settimeout(None)
            return sock
        except OSError as exc:
            last = exc
    raise WireClosed(f"cannot connect to {addr}: {last}")


def _send_obj(fs: FrameSocket, kind: int, obj, gen: int = 0,
              deadline: float = 0.0) -> int:
    """Codec-encode ``obj`` and send it as one multi-buffer frame."""
    frame, buffers = payload_mod.encode(obj)
    return fs.send(kind, frame, gen=gen, deadline=deadline,
                   buffers=buffers)


def _load_obj(frame):
    """Decode a received frame's object over its out-of-band buffers."""
    return payload_mod.decode(frame.payload, frame.buffers)


class PhiAccrualDetector:
    """Suspicion score over heartbeat inter-arrival times.

    Exponential model: with mean inter-arrival ``m``, the probability
    that a live peer stays silent for ``t`` seconds is ``exp(-t/m)``,
    so ``phi = t / (m ln 10)`` is ``-log10`` of that probability —
    phi 1 means "90% dead", phi 8 "dead to 8 nines". The mean is an
    EWMA so the detector adapts to the observed beat cadence.
    """

    __slots__ = ("mean", "last")

    def __init__(self, now: float, expected: float):
        self.mean = max(expected, 1e-3)
        self.last = now

    def beat(self, now: float) -> None:
        interval = now - self.last
        self.last = now
        self.mean = max(0.8 * self.mean + 0.2 * interval, 1e-3)

    def phi(self, now: float) -> float:
        return (now - self.last) / (self.mean * math.log(10.0))


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------

def _sock_worker(host, coords, host_of, ctl_addr, gen, resilient, tracing,
                 window, heartbeat_s, hop_deadline_s, backoff_seed,
                 coalesce, coalesce_delay_s):
    """One host process: a :class:`WorkerCore` behind TCP.

    Controller commands arrive as CMD frames on the controller
    connection; peer continuations (plain mode) as RUN frames on
    accepted peer connections, each frame carrying a *batch* of one or
    more hops. Every hop arrival is paid back with one credit when it
    leaves the mailbox.
    """
    stats = {"inbox_hwm": 0, "window": window, "frames_in": 0,
             "bytes_in": 0, "frames_out": 0, "bytes_out": 0,
             "hops_out": 0, "max_batch": 0,
             "late": 0, "credit_waits": 0}
    inbox: queue.Queue = queue.Queue()
    stop_evt = threading.Event()
    peers_ready = threading.Event()
    depth_lock = threading.Lock()
    depth = [0]
    hop_log: list = []

    ctl = FrameSocket(_connect_with_backoff(ctl_addr, backoff_seed))
    peer_listener = None
    my_addr = None
    peer_table: dict = {}     # host -> (ip, port), from the controller
    credit_back: dict = {}    # src host -> inbound FrameSocket
    peers_out: dict = {}      # dst host -> (FrameSocket, credit semaphore)

    if not resilient:
        peer_listener = socket_mod.socket(
            socket_mod.AF_INET, socket_mod.SOCK_STREAM)
        peer_listener.bind(("127.0.0.1", 0))
        peer_listener.listen(16)
        my_addr = peer_listener.getsockname()

    _send_obj(ctl, FRAME_HELLO, ("hello", host, my_addr), gen=gen)

    def note_frame(nbytes: int, deadline: float, hops: int) -> None:
        stats["frames_in"] += 1
        stats["bytes_in"] += nbytes
        if deadline and time.time() > deadline:
            stats["late"] += hops  # every hop in a late frame is late

    def note_enqueued() -> None:
        with depth_lock:
            depth[0] += 1
            if depth[0] > stats["inbox_hwm"]:
                stats["inbox_hwm"] = depth[0]

    def took_from_mailbox() -> None:
        with depth_lock:
            depth[0] -= 1

    def ctl_reader():
        while True:
            try:
                frame = ctl.recv()
            except WireError:
                inbox.put(("eof",))
                return
            if frame.kind != FRAME_CMD:
                continue
            cmd = _load_obj(frame)
            op = cmd[0]
            if op == "run":
                note_frame(frame_nbytes(frame.payload, frame.buffers),
                           frame.deadline, 1)
                note_enqueued()
                inbox.put(("crun", cmd))
            elif op == "runs":
                # a coalesced frame: unpack to per-hop mailbox entries
                # so each one pays its own credit back on dequeue
                note_frame(frame_nbytes(frame.payload, frame.buffers),
                           frame.deadline, len(cmd[1]))
                for task in cmd[1]:
                    note_enqueued()
                    inbox.put(("crun", ("run", task)))
            elif op == "peers":
                # applied here, not in the main loop: a peer's first RUN
                # frame can arrive while the main loop is busy, and its
                # onward hop must not find an empty routing table
                peer_table.update(cmd[1])
                peers_ready.set()
            else:
                inbox.put(("cmd", cmd))

    def peer_reader(fs: FrameSocket):
        src = None
        while True:
            try:
                frame = fs.recv()
            except WireError:
                return
            if frame.kind == FRAME_HELLO:
                src = _load_obj(frame)[1]
                credit_back[src] = fs
            elif frame.kind == FRAME_RUN:
                batch = _load_obj(frame)
                note_frame(frame_nbytes(frame.payload, frame.buffers),
                           frame.deadline, len(batch))
                for task in batch:
                    note_enqueued()
                    inbox.put(("prun", task, src))

    def out_reader(fs: FrameSocket, credits: threading.Semaphore):
        while True:
            try:
                frame = fs.recv()
            except WireError:
                return
            if frame.kind == FRAME_CREDIT:
                credits.release()

    def accept_loop():
        while True:
            try:
                conn, _ = peer_listener.accept()
            except OSError:
                return
            threading.Thread(target=peer_reader,
                             args=(FrameSocket(conn),),
                             daemon=True).start()

    def heartbeat_loop():
        while not stop_evt.wait(heartbeat_s):
            try:
                ctl.send(FRAME_HEARTBEAT, b"", gen=gen)
            except WireError:
                return

    threading.Thread(target=ctl_reader, daemon=True).start()
    if peer_listener is not None:
        threading.Thread(target=accept_loop, daemon=True).start()
    threading.Thread(target=heartbeat_loop, daemon=True).start()

    def get_peer(dst):
        entry = peers_out.get(dst)
        if entry is None:
            if not peers_ready.wait(timeout=20.0):
                raise WireError(f"host {host}: no peer table within 20s")
            fs = FrameSocket(
                _connect_with_backoff(peer_table[dst], backoff_seed))
            _send_obj(fs, FRAME_HELLO, ("hello", host, None), gen=gen)
            credits = threading.Semaphore(window)
            threading.Thread(target=out_reader, args=(fs, credits),
                             daemon=True).start()
            entry = peers_out[dst] = (fs, credits)
        return entry

    def emit_report(msg):
        if msg[0] == "vars":
            _send_obj(ctl, FRAME_REPORT, ("stats", host, dict(stats)),
                      gen=gen)
            if tracing and hop_log:
                _send_obj(ctl, FRAME_REPORT, ("hoplog", host, hop_log),
                          gen=gen)
        n = _send_obj(ctl, FRAME_REPORT, msg, gen=gen)
        if msg[0] == "hop":
            stats["frames_out"] += 1
            stats["bytes_out"] += n
            stats["hops_out"] += 1

    # -- plain-mode hop coalescing ------------------------------------
    # dst -> buffered task payloads whose credits are already held; a
    # nonzero flush_due[0] is the monotonic deadline of the oldest one
    pending_hops: dict = defaultdict(list)
    flush_due = [0.0]

    def flush_hops(only=None) -> None:
        targets = (only,) if only is not None else tuple(pending_hops)
        for dst in targets:
            batch = pending_hops.get(dst)
            if not batch:
                continue
            pending_hops[dst] = []
            fs, _credits = peers_out[dst]
            deadline = (time.time() + hop_deadline_s
                        if hop_deadline_s else 0.0)
            n = _send_obj(fs, FRAME_RUN, batch, gen=gen,
                          deadline=deadline)
            stats["frames_out"] += 1
            stats["bytes_out"] += n
            if len(batch) > stats["max_batch"]:
                stats["max_batch"] = len(batch)
        if not any(pending_hops.values()):
            flush_due[0] = 0.0

    def emit_hop(dst, task):
        if resilient:
            emit_report(("hop", host, dst, task))
            return
        _fs, credits = get_peer(dst)
        if not credits.acquire(blocking=False):
            # window exhausted: ship everything buffered, then block
            # until the receiver hands a credit back (this IS the
            # backpressure — and the credit-exhaustion flush)
            flush_hops()
            stats["credit_waits"] += 1
            if not credits.acquire(timeout=60.0):
                raise WireError(
                    f"host {host}: no credit from host {dst} in 60s")
        batch = pending_hops[dst]
        batch.append(task)
        stats["hops_out"] += 1
        if tracing:
            hop_log.append((host, dst,
                            payload_mod.encoded_nbytes(task), task[0]))
        if len(batch) >= coalesce:
            flush_hops(dst)
        elif flush_due[0] == 0.0 and coalesce_delay_s:
            flush_due[0] = time.monotonic() + coalesce_delay_s

    core = WorkerCore(host, coords, host_of, emit_hop, emit_report,
                      dedup=resilient)
    try:
        while True:
            if core.ready:
                core.step()
                if flush_due[0] and time.monotonic() >= flush_due[0]:
                    flush_hops()  # deadline flush: sender is busy but
                    #               the batch has waited long enough
                continue
            flush_hops()  # barrier flush: never block with hops buffered
            item = inbox.get()
            tag = item[0]
            if tag == "cmd":
                if item[1][0] == "sync":
                    # setup barrier: by per-connection FIFO, every
                    # earlier controller command is already applied
                    _send_obj(ctl, FRAME_REPORT, ("synced", host),
                              gen=gen)
                elif core.handle(item[1]) == "stop":
                    break
            elif tag == "crun":
                took_from_mailbox()
                _send_obj(ctl, FRAME_REPORT, ("credit", host), gen=gen)
                core.handle(item[1])
            elif tag == "prun":
                took_from_mailbox()
                back = credit_back.get(item[2])
                if back is not None:
                    try:
                        back.send(FRAME_CREDIT, b"", gen=gen)
                    except WireError:  # pragma: no cover - peer gone
                        pass
                core.handle(("run", item[1]))
            elif tag == "eof":
                break  # controller went away; nothing left to serve
    except BaseException as exc:  # noqa: BLE001 - forwarded to controller
        try:
            _send_obj(ctl, FRAME_REPORT,
                      ("error", host, f"{type(exc).__name__}: {exc}"),
                      gen=gen)
        except WireError:  # pragma: no cover - controller also gone
            pass
    finally:
        stop_evt.set()
        if peer_listener is not None:
            peer_listener.close()
        for fs, _credits in peers_out.values():
            fs.close()
        ctl.close()


# ----------------------------------------------------------------------
# Controller
# ----------------------------------------------------------------------

class SocketFabric(ControllerFabric):
    """TCP executor for IR messengers (see the module docstring)."""

    kind = "socket"

    def __init__(self, topology, machine=None, timeout: float = 120.0,
                 hosts=None, faults=None, recovery=True,
                 checkpoint_every: int | None = None, max_restarts: int = 2,
                 supervise: bool | None = None, trace: bool = False,
                 window: int = 32, heartbeat_s: float = 0.025,
                 phi_threshold: float = 12.0,
                 hop_deadline_s: float | None = None,
                 coalesce: int = 8, coalesce_delay_s: float = 0.0005):
        super().__init__(topology, machine, timeout, hosts, faults,
                         recovery, checkpoint_every, max_restarts,
                         supervise, trace)
        if window < 1:
            raise FabricError("flow-control window must be >= 1")
        if coalesce < 1:
            raise FabricError("coalesce batch bound must be >= 1")
        self._ctx = mp.get_context("fork")
        self.window = window
        self.heartbeat_s = heartbeat_s
        self.phi_threshold = phi_threshold
        self.hop_deadline_s = hop_deadline_s
        self.coalesce = min(coalesce, window)
        self.coalesce_delay_s = coalesce_delay_s
        self.lost: list = []            # casualties (drops, no recovery)
        self.stale_frames = 0           # dropped stale-generation frames
        self._gens: dict = defaultdict(int)     # host -> generation
        self._conns: dict = {}                  # host -> FrameSocket
        self._procs: dict = {}                  # host -> Process
        self._peer_addrs: dict = {}             # host -> (ip, port)
        self._detectors: dict = {}              # host -> PhiAccrualDetector
        self._hello_evts: dict = {}             # (host, gen) -> Event
        self._reports: queue.Queue = queue.Queue()
        self._reg_lock = threading.Lock()
        self._listener = None
        self._addr = None

    # -- connection plumbing ------------------------------------------
    def _serve_conn(self, fs: FrameSocket) -> None:
        """Handshake one inbound connection, then pump its frames."""
        try:
            hello = fs.recv()
        except WireError:
            fs.close()
            return
        if hello.kind != FRAME_HELLO:
            fs.close()
            return
        _tag, host, peer_addr = _load_obj(hello)
        with self._reg_lock:
            if hello.gen != self._gens[host]:
                self.stale_frames += 1  # a replaced worker's socket
                fs.close()
                return
            self._conns[host] = fs
            if peer_addr is not None:
                self._peer_addrs[host] = tuple(peer_addr)
            self._detectors[host] = PhiAccrualDetector(
                time.monotonic(), self.heartbeat_s)
            evt = self._hello_evts.get((host, hello.gen))
            if evt is not None:
                evt.set()
        while True:
            try:
                frame = fs.recv()
            except WireError:
                self._reports.put(("gone", host, hello.gen))
                return
            if frame.gen != self._gens[host]:
                self.stale_frames += 1
                continue
            if frame.kind == FRAME_HEARTBEAT:
                det = self._detectors.get(host)
                if det is not None:
                    det.beat(time.monotonic())
            elif frame.kind == FRAME_REPORT:
                self._reports.put(("report", host, _load_obj(frame)))

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            threading.Thread(target=self._serve_conn,
                             args=(FrameSocket(conn),),
                             daemon=True).start()

    def _send_cmd(self, host, cmd, deadline: float = 0.0) -> int:
        """Frame one command to a worker; returns the on-wire size.

        A dead worker's connection may already be broken — that is not
        an error here (the heartbeat detector owns failure handling and
        the journal owns redelivery), so failed sends report size 0.
        """
        fs = self._conns.get(host)
        if fs is None:
            return 0
        try:
            return _send_obj(fs, FRAME_CMD, cmd,
                             gen=self._gens[host], deadline=deadline)
        except WireError:
            return 0

    def _spawn(self, host, coords_of_host, programs) -> None:
        gen = self._gens[host]
        evt = threading.Event()
        self._hello_evts[(host, gen)] = evt
        proc = self._ctx.Process(
            target=_sock_worker,
            args=(host, coords_of_host[host], self._host_of, self._addr,
                  gen, self.resilient, self.trace.enabled, self.window,
                  self.heartbeat_s, self.hop_deadline_s,
                  (self._plan.seed or 0) * 31 + host,
                  self.coalesce, self.coalesce_delay_s),
            daemon=True, name=f"sockhost{host}",
        )
        proc.start()
        self._procs[host] = proc
        if not evt.wait(timeout=20.0):
            raise FabricError(
                f"socket worker {host} did not say hello within 20s")
        self._send_cmd(host, ("register", programs))

    # -- execution -----------------------------------------------------
    def run(self) -> FabricResult:
        if not self._initial:
            raise FabricError("no messengers injected")
        self._listener = socket_mod.socket(
            socket_mod.AF_INET, socket_mod.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(self.n_hosts + 4)
        self._addr = self._listener.getsockname()
        threading.Thread(target=self._accept_loop, daemon=True).start()
        try:
            if self.resilient:
                return self._run_resilient()
            return self._run_plain()
        finally:
            self._shutdown()

    def _shutdown(self) -> None:
        """Tear the world down — also on exception paths, where a
        worker may be wedged mid-protocol: every process must exit and
        every 127.0.0.1 socket must close, or a failed run would leak
        orphans into the caller's process table."""
        for host in list(self._conns):
            self._send_cmd(host, ("stop",))
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        reap_workers(self._procs.values())
        for fs in self._conns.values():
            fs.close()
        self._conns.clear()
        self._procs.clear()

    def _record_hop(self, now, src, dst, nbytes, mid) -> None:
        self.trace.record(t0=now, t1=now, place=dst, actor=mid,
                          kind="hop", note="hop", src_place=src,
                          nbytes=nbytes)

    def _record_transport(self, now, host, stats) -> None:
        note = " ".join(f"{k}={v}" for k, v in sorted(stats.items()))
        self.trace.record(t0=now, t1=now, place=host, actor="transport",
                          kind="transport", note=note)

    def _check_heartbeats(self, dead_gens: set) -> list:
        """Hosts currently suspected dead (heartbeat loss or EOF)."""
        now = time.monotonic()
        suspects = []
        for host, det in list(self._detectors.items()):
            if (host, self._gens[host]) in dead_gens:
                suspects.append((host, float("inf")))
            elif det.phi(now) > self.phi_threshold:
                suspects.append((host, det.phi(now)))
        return suspects

    def _run_plain(self) -> FabricResult:
        t0 = time.perf_counter()
        tracing = self.trace.enabled
        coords = list(self.topology.coords)
        coords_of_host = {
            h: [c for c in coords if self._host_of[c] == h]
            for h in range(self.n_hosts)
        }
        programs = list(self._programs.values())
        for h in range(self.n_hosts):
            self._spawn(h, coords_of_host, programs)
        peer_table = {h: self._peer_addrs[h] for h in range(self.n_hosts)}
        for h in range(self.n_hosts):
            self._send_cmd(h, ("peers", peer_table))
        for c in coords:
            if self._loads[c]:
                self._send_cmd(self._host_of[c], ("load", c, self._loads[c]))
        for coord, name, args, count in self._signals:
            self._send_cmd(self._host_of[coord],
                           ("signal0", (coord, name, args, count)))

        # Setup barrier: peer-to-peer RUN frames ride separate
        # connections from controller commands, so without this a hop
        # could execute at a worker before its loads arrived.
        for h in range(self.n_hosts):
            self._send_cmd(h, ("sync",))
        synced: set = set()
        sync_deadline = time.monotonic() + self.timeout
        while len(synced) < self.n_hosts:
            remaining = sync_deadline - time.monotonic()
            if remaining <= 0:
                raise FabricError(
                    f"socket fabric setup barrier timed out "
                    f"({self.n_hosts - len(synced)} host(s) silent)")
            try:
                kind, host, msg = self._reports.get(
                    timeout=min(remaining, 0.5))
            except queue.Empty:
                continue
            if kind == "report" and msg[0] == "synced":
                synced.add(msg[1])
            elif kind == "report" and msg[0] == "error":
                raise FabricError(f"worker {msg[1]} failed: {msg[2]}")

        known: set = set()
        done: set = set()
        for coord, name, env in self._initial:
            mid = f"m{self._counter}"
            self._counter += 1
            known.add(mid)
            self._send_cmd(self._host_of[coord], ("run", (
                mid, [], 0, coord,
                Interp(name, env).agent_snapshot(), 0,
            )))

        dead_gens: set = set()
        deadline = time.monotonic() + self.timeout
        while not known <= done:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlockError(
                    f"socket fabric timed out; "
                    f"{len(known - done)} messenger(s) unaccounted"
                    f"{self._mc_hint(window=self.window)}")
            suspects = self._check_heartbeats(dead_gens)
            if suspects:
                host, phi = suspects[0]
                raise FabricError(
                    f"socket worker {host} lost (heartbeat silence, "
                    f"phi={phi:.1f}) and this run has no supervision; "
                    f"pass supervise=True or a fault plan for recovery")
            try:
                kind, host, msg = self._reports.get(
                    timeout=min(remaining, 0.1))
            except queue.Empty:
                continue
            if kind == "gone":
                dead_gens.add((host, msg))
                continue
            if msg[0] == "error":
                raise FabricError(f"worker {msg[1]} failed: {msg[2]}")
            if msg[0] == "done":
                done.add(msg[1])
                known.update(msg[2])

        for h in range(self.n_hosts):
            self._send_cmd(h, ("collect",))
        places = self._collect(tracing, t0)
        return FabricResult(time=time.perf_counter() - t0,
                            trace=self.trace, places=places)

    def _collect(self, tracing, t0) -> dict:
        """Gather vars (+ transport stats and plain-mode hop logs)."""
        places: dict = {}
        hosts_seen: set = set()
        deadline = time.monotonic() + self.timeout
        while len(hosts_seen) < self.n_hosts:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlockError(
                    f"socket fabric timed out collecting results "
                    f"({self.n_hosts - len(hosts_seen)} host(s) missing)")
            try:
                kind, host, msg = self._reports.get(
                    timeout=min(remaining, 0.5))
            except queue.Empty:
                continue
            if kind == "gone":
                continue
            now = time.perf_counter() - t0
            if msg[0] == "error":
                raise FabricError(f"worker {msg[1]} failed: {msg[2]}")
            if msg[0] == "stats":
                if tracing:
                    self._record_transport(now, msg[1], msg[2])
            elif msg[0] == "hoplog":
                if tracing:
                    for src, dst, nbytes, mid in msg[2]:
                        self._record_hop(now, src, dst, nbytes, mid)
            elif msg[0] == "vars":
                hosts_seen.add(msg[1])
                places.update(msg[2])
        return places

    def _run_resilient(self) -> FabricResult:
        t0 = time.perf_counter()
        runtime = PlanRuntime(self._plan, self._resolve_host)
        sup = self._sup
        tracing = self.trace.enabled
        coords = list(self.topology.coords)
        coords_of_host = {
            h: [c for c in coords if self._host_of[c] == h]
            for h in range(self.n_hosts)
        }
        programs = list(self._programs.values())

        # Credit gate: at most `window` un-credited hops toward each
        # worker; excess queues in the gate and drains in coalesced
        # multi-run frames as credits return. The worker returns one
        # credit per hop leaving its mailbox.
        def emit_batch(h, batch):
            dl = (time.time() + self.hop_deadline_s
                  if self.hop_deadline_s else 0.0)
            cmd = ("run", batch[0]) if len(batch) == 1 \
                else ("runs", batch)
            self._send_cmd(h, cmd, deadline=dl)

        gate = CreditGate(self.window, self.coalesce, emit_batch)

        def gate_send(h, cmd, journal=True, flush=True):
            if journal:
                sup.journal(h, cmd)
            gate.push(h, cmd[1], flush=flush)

        def on_credit(h):
            gate.credit(h)

        def send(h, cmd):
            """Journal + deliver a non-run setup command."""
            sup.journal(h, cmd)
            self._send_cmd(h, cmd)

        dead_gens: set = set()

        def respawn(h):
            sup.authorize_respawn(h)
            FAULT_STATS["masked"] += 1
            old = self._procs.get(h)
            self._gens[h] += 1  # stale sockets can't deliver from here on
            conn = self._conns.pop(h, None)
            if conn is not None:
                conn.close()
            self._detectors.pop(h, None)
            if old is not None:
                if old.is_alive():
                    old.terminate()
                old.join(timeout=5.0)
            self._spawn(h, coords_of_host, programs)
            state, replay = sup.recovery_script(h)
            if state is not None:
                self._send_cmd(h, ("restore", state))
            gate.reset(h)  # every queued payload is in the journal
            for cmd in replay:
                if cmd[0] == "run":
                    gate_send(h, cmd, journal=False, flush=False)
                else:
                    self._send_cmd(h, cmd)
            gate.pump(h)  # replayed hops drain as coalesced frames
            if tracing:
                now = time.perf_counter() - t0
                self.trace.record(
                    t0=now, t1=now, place=h, actor="supervisor",
                    kind="respawn",
                    note=f"worker {h} respawned "
                         f"(restart {self.restarts[h]}, gen "
                         f"{self._gens[h]}, replay {len(replay)} cmd(s))")

        def checkpoint_all():
            cid = sup.begin_checkpoint(range(self.n_hosts))
            for h in range(self.n_hosts):
                self._send_cmd(h, ("ckpt", cid))

        for h in range(self.n_hosts):
            self._spawn(h, coords_of_host, programs)
        for c in coords:
            if self._loads[c]:
                send(self._host_of[c], ("load", c, self._loads[c]))
        for coord, name, args, count in self._signals:
            send(self._host_of[coord],
                 ("signal0", (coord, name, args, count)))
        known: set = set()
        done: set = set()
        for coord, name, env in self._initial:
            mid = f"m{self._counter}"
            self._counter += 1
            known.add(mid)
            gate_send(self._host_of[coord], ("run", (
                mid, [], 0, coord,
                Interp(name, env).agent_snapshot(), 0,
            )))

        deadline = time.monotonic() + self.timeout
        while not known <= done:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                casualties = (
                    "; fault injection destroyed messenger(s) with "
                    "recovery disabled: " + ", ".join(self.lost)
                    if self.lost else ""
                )
                raise DeadlockError(
                    f"socket fabric timed out; "
                    f"{len(known - done)} messenger(s) unaccounted "
                    f"({sum(self.restarts.values())} respawn(s))"
                    f"{casualties}"
                    f"{self._mc_hint(window=self.window)}")
            # fire due crash specs: a crash is a real SIGKILL
            if runtime.pending_crashes():
                now = time.perf_counter() - t0
                for spec, h in runtime.due_crashes(now):
                    proc = self._procs[h]
                    if proc.is_alive():
                        FAULT_STATS["fired"] += 1
                        os.kill(proc.pid, signal.SIGKILL)
                        if tracing:
                            self.trace.record(
                                t0=now, t1=now, place=h,
                                actor="fault-injector", kind="fault",
                                note=f"worker {h} SIGKILLed")
            # failure detection is heartbeat-based: respawn suspects
            for h, _phi in self._check_heartbeats(dead_gens):
                respawn(h)
            try:
                kind, host, msg = self._reports.get(
                    timeout=min(remaining, 0.05))
            except queue.Empty:
                continue
            if kind == "gone":
                dead_gens.add((host, msg))
                continue
            op = msg[0]
            if op == "error":
                raise FabricError(f"worker {msg[1]} failed: {msg[2]}")
            if op == "done":
                done.add(msg[1])
                known.update(msg[2])
            elif op == "credit":
                on_credit(msg[1])
            elif op == "hop":
                _, src_host, dst_host, task = msg
                verdict, spec = hop_fault_verdict(
                    runtime, dst_host, self._recovery.enabled)
                now = time.perf_counter() - t0
                if verdict == "lost":
                    FAULT_STATS["fired"] += 1
                    FAULT_STATS["lost"] += 1
                    self.lost.append(task[0])
                    if tracing:
                        self.trace.record(
                            t0=now, t1=now, place=dst_host,
                            actor=task[0], kind="fault",
                            note="hop frame dropped (lost)",
                            src_place=src_host,
                            nbytes=payload_mod.encoded_nbytes(task))
                    continue  # the continuation is gone
                if verdict == "retransmit":
                    FAULT_STATS["fired"] += 1
                    FAULT_STATS["masked"] += 1
                    if tracing:
                        self.trace.record(
                            t0=now, t1=now, place=dst_host,
                            actor=task[0], kind="fault",
                            note="hop frame dropped (retransmitting)",
                            src_place=src_host)
                        self.trace.record(
                            t0=now, t1=now, place=dst_host,
                            actor=task[0], kind="retry",
                            note="hop frame redelivered",
                            src_place=src_host)
                elif verdict == "duplicate":
                    FAULT_STATS["fired"] += 1
                    FAULT_STATS["masked"] += 1
                    if tracing:
                        self.trace.record(
                            t0=now, t1=now, place=dst_host,
                            actor=task[0], kind="fault",
                            note="hop frame duplicated (dedup masks)",
                            src_place=src_host)
                    gate_send(dst_host, ("run", task))  # extra copy
                elif verdict == "delay":
                    FAULT_STATS["fired"] += 1
                    FAULT_STATS["masked"] += 1
                    if tracing:
                        self.trace.record(
                            t0=now, t1=now, place=dst_host,
                            actor=task[0], kind="fault",
                            note=f"hop frame delayed {spec.seconds}s",
                            src_place=src_host)
                    time.sleep(min(spec.seconds, 0.1))
                gate_send(dst_host, ("run", task))
                if tracing:
                    self._record_hop(
                        now, src_host, dst_host,
                        payload_mod.encoded_nbytes(task), task[0])
                sup.note_forward()
                if (self._checkpoint_every is not None
                        and sup.forwards_since_ckpt
                        >= self._checkpoint_every):
                    checkpoint_all()
            elif op == "ckpt":
                _, h, cid, state = msg
                sup.commit_checkpoint(h, cid, state)
                if tracing:
                    now = time.perf_counter() - t0
                    self.trace.record(
                        t0=now, t1=now, place=h, actor="supervisor",
                        kind="checkpoint", note=f"ckpt {cid}")

        for h in range(self.n_hosts):
            self._send_cmd(h, ("collect",))
        places = self._collect_resilient(tracing, t0, on_credit)
        return FabricResult(time=time.perf_counter() - t0,
                            trace=self.trace, places=places)

    def _collect_resilient(self, tracing, t0, on_credit) -> dict:
        places: dict = {}
        hosts_seen: set = set()
        deadline = time.monotonic() + self.timeout
        while len(hosts_seen) < self.n_hosts:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlockError(
                    f"socket fabric timed out collecting results "
                    f"({self.n_hosts - len(hosts_seen)} host(s) missing)")
            try:
                kind, host, msg = self._reports.get(
                    timeout=min(remaining, 0.5))
            except queue.Empty:
                continue
            if kind == "gone":
                continue
            now = time.perf_counter() - t0
            if msg[0] == "error":
                raise FabricError(f"worker {msg[1]} failed: {msg[2]}")
            if msg[0] == "credit":
                on_credit(msg[1])
            elif msg[0] == "stats":
                if tracing:
                    self._record_transport(now, msg[1], msg[2])
            elif msg[0] == "vars":
                hosts_seen.add(msg[1])
                places.update(msg[2])
        return places
