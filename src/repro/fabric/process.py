"""ProcessFabric: PEs as OS processes, migration as pickled state.

This is the faithful end of the fabric spectrum: every PE is a real
``multiprocessing.Process`` with its own address space. Node variables
never leave their process; when an IR messenger hops, its continuation
— program name, control stack, agent environment — is pickled and
shipped through an inter-process queue, exactly the MESSENGERS
discipline ("the state of the computation is moved on each hop, the
code is not moved"). Programs are installed into every worker once at
start-up, like compiled messenger code loaded by each daemon.

Only IR messengers run here: CPython cannot pickle a live generator
frame, and the IR interpreter's explicit continuation is the honest
equivalent of MESSENGERS' compiled resumption points (see DESIGN.md).

Termination uses parental accounting: every messenger's completion
report names the children it injected; the controller is done when the
set of known messengers equals the set of completed ones — correct
under arbitrary report reordering across queues, since a parent's
report both introduces and is required for its children.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from collections import defaultdict, deque

from ..errors import DeadlockError, FabricError, MigrationError
from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..navp import ir
from ..navp.interp import Interp
from ..navp.kernels import get_kernel
from .hosts import resolve_hosts
from .sim import FabricResult
from .topology import Topology
from .trace import TraceLog

__all__ = ["ProcessFabric"]

# Field offsets of a worker task record (see _worker.execute).
_ID, _CHILDREN, _SEQ, _AT, _INTERP = range(5)


def _worker(host, coords, host_of, in_queue, host_queues, report_queue):
    """One host process: executes messenger continuations against the
    local state of every logical node it carries."""
    node_vars: dict = {coord: {} for coord in coords}
    event_counts: dict = defaultdict(int)       # (coord, name, args)
    event_waiters: dict = defaultdict(deque)
    ready: deque = deque()

    # A task is the list [id, children, seq, at, interp]; the hop
    # payload is the same thing as a tuple (with the interpreter
    # reduced to its snapshot) — positional records pickle without
    # re-shipping invariant key strings on every migration.
    def execute(task: list) -> None:
        interp: Interp = task[_INTERP]
        while True:
            action = interp.next_action(node_vars[task[_AT]])
            if action is None:
                report_queue.put(("done", task[_ID], task[_CHILDREN]))
                return
            kind = action[0]
            if kind == "hop":
                dst = tuple(action[1])
                if dst not in host_of:
                    raise MigrationError(
                        f"hop target {dst!r} is not a PE of this fabric"
                    )
                if host_of[dst] == host:
                    task[_AT] = dst    # co-hosted: a local hand-over
                    continue
                host_queues[host_of[dst]].put(("run", (
                    task[_ID], task[_CHILDREN], task[_SEQ], dst,
                    interp.agent_snapshot(),
                )))
                return
            if kind == "compute":
                _, kname, argvals, out, _cost_kind = action
                interp.env[out] = get_kernel(kname).fn(*argvals)
                continue
            if kind == "wait":
                key = (task[_AT], action[1], action[2])
                if event_counts[key] > 0:
                    event_counts[key] -= 1
                    continue
                event_waiters[key].append(task)
                return
            if kind == "signal":
                key = (task[_AT], action[1], action[2])
                remaining = action[3]
                waiters = event_waiters[key]
                while remaining > 0 and waiters:
                    ready.append(waiters.popleft())
                    remaining -= 1
                event_counts[key] += remaining
                continue
            if kind == "inject":
                child_id = f"{task[_ID]}/{task[_SEQ]}"
                task[_SEQ] += 1
                task[_CHILDREN].append(child_id)
                ready.append([child_id, [], 0, task[_AT],
                              Interp(action[1], action[2])])
                continue
            raise FabricError(f"unsupported action {action!r} on "
                              f"the process fabric")

    try:
        while True:
            if ready:
                execute(ready.popleft())
                continue
            cmd = in_queue.get()
            op = cmd[0]
            if op == "run":
                tid, children, seq, at, interp_snap = cmd[1]
                ready.append([tid, children, seq, tuple(at),
                              Interp.from_snapshot(interp_snap)])
            elif op == "register":
                for program in cmd[1]:
                    ir.register_program(program, replace=True)
            elif op == "load":
                node_vars[cmd[1]].update(cmd[2])
            elif op == "signal0":
                coord, _name, args, count = cmd[1]
                event_counts[(coord, _name, args)] += count
            elif op == "collect":
                report_queue.put(("vars", host, node_vars))
            elif op == "stop":
                return
            else:  # pragma: no cover - protocol is closed
                raise FabricError(f"unknown worker command {op!r}")
    except BaseException as exc:  # noqa: BLE001 - forwarded to controller
        report_queue.put(("error", host, f"{type(exc).__name__}: {exc}"))


class ProcessFabric:
    """Multiprocessing executor for IR messengers."""

    def __init__(
        self,
        topology: Topology,
        machine: MachineSpec | None = None,
        timeout: float = 120.0,
        hosts=None,
    ):
        self.topology = topology
        self.machine = machine if machine is not None else SUN_BLADE_100
        self.timeout = timeout
        self.trace = TraceLog(enabled=False)
        self._ctx = mp.get_context("fork")
        self._host_of = resolve_hosts(topology, hosts)
        self.n_hosts = max(self._host_of.values()) + 1
        self._loads: dict = defaultdict(dict)
        self._signals: list = []
        self._initial: list = []  # (coord, program_name, env)
        self._programs: dict = {}
        self._counter = 0

    # -- setup (collected, applied at run()) ------------------------------
    def load(self, coord, **node_vars) -> None:
        self._loads[self.topology.normalize(coord)].update(node_vars)

    def signal_initial(self, coord, name: str, *args, count: int = 1) -> None:
        self._signals.append(
            (self.topology.normalize(coord), name, tuple(args), count))

    def inject(self, coord, program: str | ir.Program,
               env: dict | None = None) -> None:
        """Schedule an IR program for injection at start-up."""
        if isinstance(program, ir.Program):
            self._programs[program.name] = program
            name = program.name
        else:
            name = program
            self._programs[name] = ir.get_program(name)
        self._collect_referenced(self._programs[name])
        self._initial.append(
            (self.topology.normalize(coord), name, dict(env or {})))

    def _collect_referenced(self, program: ir.Program) -> None:
        """Pull in programs reachable through Inject statements."""

        def walk(body):
            for stmt in body:
                if isinstance(stmt, ir.InjectStmt):
                    if stmt.program not in self._programs:
                        child = ir.get_program(stmt.program)
                        self._programs[stmt.program] = child
                        walk(child.body)
                elif isinstance(stmt, ir.For):
                    walk(stmt.body)
                elif isinstance(stmt, ir.If):
                    walk(stmt.then)
                    walk(stmt.orelse)

        walk(program.body)

    # -- execution --------------------------------------------------------
    def run(self) -> FabricResult:
        if not self._initial:
            raise FabricError("no messengers injected")
        t0 = time.perf_counter()
        coords = list(self.topology.coords)
        host_queues = {h: self._ctx.Queue() for h in range(self.n_hosts)}
        report_queue = self._ctx.Queue()
        coords_of_host = {
            h: [c for c in coords if self._host_of[c] == h]
            for h in range(self.n_hosts)
        }
        workers = [
            self._ctx.Process(
                target=_worker,
                args=(h, coords_of_host[h], self._host_of, host_queues[h],
                      host_queues, report_queue),
                daemon=True,
                name=f"host{h}",
            )
            for h in range(self.n_hosts)
        ]
        for w in workers:
            w.start()
        try:
            programs = list(self._programs.values())
            for h in range(self.n_hosts):
                host_queues[h].put(("register", programs))
            for c in coords:
                if self._loads[c]:
                    host_queues[self._host_of[c]].put(
                        ("load", c, self._loads[c]))
            for coord, name, args, count in self._signals:
                host_queues[self._host_of[coord]].put(
                    ("signal0", (coord, name, args, count)))

            known: set = set()
            done: set = set()
            for coord, name, env in self._initial:
                mid = f"m{self._counter}"
                self._counter += 1
                known.add(mid)
                host_queues[self._host_of[coord]].put(("run", (
                    mid, [], 0, coord,
                    Interp(name, env).agent_snapshot(),
                )))

            deadline = time.monotonic() + self.timeout
            while not known <= done:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlockError(
                        f"process fabric timed out; "
                        f"{len(known - done)} messenger(s) unaccounted"
                    )
                try:
                    msg = report_queue.get(timeout=min(remaining, 1.0))
                except queue_mod.Empty:
                    continue
                if msg[0] == "error":
                    raise FabricError(
                        f"worker {msg[1]} failed: {msg[2]}")
                if msg[0] == "done":
                    done.add(msg[1])
                    known.update(msg[2])

            for h in range(self.n_hosts):
                host_queues[h].put(("collect",))
            places: dict = {}
            hosts_seen: set = set()
            while len(hosts_seen) < self.n_hosts:
                msg = report_queue.get(timeout=self.timeout)
                if msg[0] == "error":
                    raise FabricError(f"worker {msg[1]} failed: {msg[2]}")
                if msg[0] == "vars":
                    hosts_seen.add(msg[1])
                    places.update(msg[2])
        finally:
            for h in range(self.n_hosts):
                try:
                    host_queues[h].put(("stop",))
                except Exception:  # pragma: no cover - shutdown races
                    pass
            for w in workers:
                w.join(timeout=5.0)
                if w.is_alive():
                    w.terminate()
        return FabricResult(
            time=time.perf_counter() - t0,
            trace=self.trace,
            places=places,
        )
