"""ProcessFabric: PEs as OS processes, migration as pickled state.

This is the faithful end of the fabric spectrum: every PE is a real
``multiprocessing.Process`` with its own address space. Node variables
never leave their process; when an IR messenger hops, its continuation
— program name, control stack, agent environment — is pickled and
shipped through an inter-process queue, exactly the MESSENGERS
discipline ("the state of the computation is moved on each hop, the
code is not moved"). Programs are installed into every worker once at
start-up, like compiled messenger code loaded by each daemon.

Only IR messengers run here: CPython cannot pickle a live generator
frame, and the IR interpreter's explicit continuation is the honest
equivalent of MESSENGERS' compiled resumption points (see DESIGN.md).

Termination uses parental accounting: every messenger's completion
report names the children it injected; the controller is done when the
set of known messengers equals the set of completed ones — correct
under arbitrary report reordering across queues, since a parent's
report both introduces and is required for its children.

Resilient mode
--------------
With a fault plan (or ``supervise=True``) the fabric runs in resilient
mode, and a worker process can be SIGKILLed mid-run and the run still
completes:

* every cross-host hop routes through the **controller** (workers stop
  writing peer queues), which journals each command per destination
  host in a :class:`~repro.resilience.recovery.ReplayLedger`;
* deliveries carry a ``(messenger id, hop count)`` key and each worker
  keeps a seen-set, so replayed deliveries are processed exactly once
  — a replayed continuation that re-emits a hop the original already
  made is discarded at the destination, while its *new* hops (ones the
  dead original never made) carry unseen keys and proceed;
* on a ``ckpt`` marker a worker replies — at task-queue quiescence, so
  no continuation is ever split by the cut — with its full state
  (node variables, event counts, parked waiters, ready tasks, seen
  keys); the controller then truncates that host's journal to the
  entries forwarded after the marker (every inter-host message passes
  through the journal, which is what makes the per-host cut globally
  consistent);
* a dead worker is respawned with a fresh queue, re-registered,
  restored from its last checkpoint, and replayed from the journal.

Losing a worker therefore loses only the work since its last
checkpoint, and that work is re-executed deterministically. Without a
checkpoint the journal reaches back to start-up and replay simply
re-runs the host's history. Crash specs name *host* indices and fire
on wall-clock time or on the global forwarded-hop count.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import signal
import time
from collections import defaultdict, deque

from ..errors import (ConfigurationError, DeadlockError, FabricError,
                      MigrationError, ResilienceError)
from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..navp import ir
from ..navp.interp import Interp
from ..navp.kernels import get_kernel
from ..navp.messenger import Messenger
from ..resilience.faults import FaultPlan, PlanRuntime
from ..resilience.faults import STATS as FAULT_STATS
from ..resilience.faults import ambient as ambient_faults
from ..resilience.recovery import RecoveryPolicy, ReplayLedger
from .hosts import resolve_hosts
from .sim import FabricResult
from .topology import Topology
from .trace import TraceLog

__all__ = ["ProcessFabric"]

# Field offsets of a worker task record (see _worker.execute).
_ID, _CHILDREN, _SEQ, _AT, _INTERP, _HOPS = range(6)


def _freeze_task(task: list) -> tuple:
    return (task[_ID], task[_CHILDREN], task[_SEQ], task[_AT],
            task[_INTERP].agent_snapshot(), task[_HOPS])


def _thaw_task(snap) -> list:
    return [snap[0], snap[1], snap[2], tuple(snap[3]),
            Interp.from_snapshot(snap[4]), snap[5]]


def _worker(host, coords, host_of, in_queue, host_queues, report_queue,
            resilient=False):
    """One host process: executes messenger continuations against the
    local state of every logical node it carries.

    In resilient mode hops are emitted to the controller instead of
    written to peer queues, arrivals are deduplicated by
    ``(messenger id, hop count)``, and the worker answers ``ckpt`` /
    ``restore`` commands — both handled between tasks, so a state
    snapshot never splits a continuation.
    """
    node_vars: dict = {coord: {} for coord in coords}
    event_counts: dict = defaultdict(int)       # (coord, name, args)
    event_waiters: dict = defaultdict(deque)
    ready: deque = deque()
    seen: set = set()                           # delivered (mid, hops) keys

    # A task is the list [id, children, seq, at, interp, hops]; the hop
    # payload is the same thing as a tuple (with the interpreter
    # reduced to its snapshot) — positional records pickle without
    # re-shipping invariant key strings on every migration.
    def execute(task: list) -> None:
        interp: Interp = task[_INTERP]
        while True:
            action = interp.next_action(node_vars[task[_AT]])
            if action is None:
                report_queue.put(("done", task[_ID], task[_CHILDREN]))
                return
            kind = action[0]
            if kind == "hop":
                dst = tuple(action[1])
                if dst not in host_of:
                    raise MigrationError(
                        f"hop target {dst!r} is not a PE of this fabric"
                    )
                if host_of[dst] == host:
                    task[_AT] = dst    # co-hosted: a local hand-over
                    continue
                payload = (
                    task[_ID], task[_CHILDREN], task[_SEQ], dst,
                    interp.agent_snapshot(), task[_HOPS] + 1,
                )
                if resilient:
                    report_queue.put(("hop", host_of[dst], payload))
                else:
                    host_queues[host_of[dst]].put(("run", payload))
                return
            if kind == "compute":
                _, kname, argvals, out, _cost_kind = action
                interp.env[out] = get_kernel(kname).fn(*argvals)
                continue
            if kind == "wait":
                key = (task[_AT], action[1], action[2])
                if event_counts[key] > 0:
                    event_counts[key] -= 1
                    continue
                event_waiters[key].append(task)
                return
            if kind == "signal":
                key = (task[_AT], action[1], action[2])
                remaining = action[3]
                waiters = event_waiters[key]
                while remaining > 0 and waiters:
                    ready.append(waiters.popleft())
                    remaining -= 1
                event_counts[key] += remaining
                continue
            if kind == "inject":
                child_id = f"{task[_ID]}/{task[_SEQ]}"
                task[_SEQ] += 1
                task[_CHILDREN].append(child_id)
                ready.append([child_id, [], 0, task[_AT],
                              Interp(action[1], action[2]), 0])
                continue
            raise FabricError(f"unsupported action {action!r} on "
                              f"the process fabric")

    try:
        while True:
            if ready:
                execute(ready.popleft())
                continue
            cmd = in_queue.get()
            op = cmd[0]
            if op == "run":
                payload = cmd[1]
                if resilient:
                    key = (payload[0], payload[5])
                    if key in seen:
                        continue  # replayed delivery, already processed
                    seen.add(key)
                ready.append(_thaw_task(payload))
            elif op == "register":
                for program in cmd[1]:
                    ir.register_program(program, replace=True)
            elif op == "load":
                node_vars[cmd[1]].update(cmd[2])
            elif op == "signal0":
                coord, _name, args, count = cmd[1]
                event_counts[(coord, _name, args)] += count
            elif op == "ckpt":
                # quiescent here: `ready` drained before the queue read,
                # so the cut never splits a continuation
                state = (
                    node_vars,
                    dict(event_counts),
                    [(key, [_freeze_task(t) for t in waiters])
                     for key, waiters in event_waiters.items() if waiters],
                    [_freeze_task(t) for t in ready],
                    list(seen),
                )
                report_queue.put(("ckpt", host, cmd[1], state))
            elif op == "restore":
                vars_in, counts_in, waiters_in, ready_in, seen_in = cmd[1]
                for coord, values in vars_in.items():
                    node_vars[coord] = dict(values)
                event_counts.clear()
                event_counts.update(counts_in)
                event_waiters.clear()
                for key, frozen in waiters_in:
                    event_waiters[key].extend(
                        _thaw_task(s) for s in frozen)
                ready.extend(_thaw_task(s) for s in ready_in)
                seen.update(seen_in)
            elif op == "collect":
                report_queue.put(("vars", host, node_vars))
            elif op == "stop":
                return
            else:  # pragma: no cover - protocol is closed
                raise FabricError(f"unknown worker command {op!r}")
    except BaseException as exc:  # noqa: BLE001 - forwarded to controller
        report_queue.put(("error", host, f"{type(exc).__name__}: {exc}"))


class ProcessFabric:
    """Multiprocessing executor for IR messengers."""

    def __init__(
        self,
        topology: Topology,
        machine: MachineSpec | None = None,
        timeout: float = 120.0,
        hosts=None,
        faults: FaultPlan | None = None,
        recovery=True,
        checkpoint_every: int | None = None,
        max_restarts: int = 2,
        supervise: bool | None = None,
        trace: bool = False,
    ):
        self.topology = topology
        self.machine = machine if machine is not None else SUN_BLADE_100
        self.timeout = timeout
        self.trace = TraceLog(enabled=trace)
        self._ctx = mp.get_context("fork")
        self._host_of = resolve_hosts(topology, hosts)
        self.n_hosts = max(self._host_of.values()) + 1
        self._loads: dict = defaultdict(dict)
        self._signals: list = []
        self._initial: list = []  # (coord, program_name, env)
        self._programs: dict = {}
        self._counter = 0
        if faults is None:
            faults, ambient_recovery = ambient_faults()
            if faults is not None:
                recovery = ambient_recovery
        self._plan = faults if faults is not None else FaultPlan()
        self._recovery = RecoveryPolicy.coerce(recovery)
        self._checkpoint_every = checkpoint_every
        self._max_restarts = max_restarts
        self.resilient = bool(self._plan) or bool(supervise) or (
            checkpoint_every is not None)
        self.restarts: dict = defaultdict(int)  # host -> respawn count

    def _resolve_host(self, spec_place):
        """Fault-spec places name worker *hosts* on this fabric (an
        index, or a PE coordinate mapped to its host)."""
        if isinstance(spec_place, int):
            return spec_place if 0 <= spec_place < self.n_hosts else None
        try:
            coord = self.topology.normalize(tuple(spec_place))
        except Exception:
            return None
        return self._host_of.get(coord)

    # -- setup (collected, applied at run()) ------------------------------
    def load(self, coord, **node_vars) -> None:
        self._loads[self.topology.normalize(coord)].update(node_vars)

    def signal_initial(self, coord, name: str, *args, count: int = 1) -> None:
        self._signals.append(
            (self.topology.normalize(coord), name, tuple(args), count))

    def inject(self, coord, program: str | ir.Program,
               env: dict | None = None) -> None:
        """Schedule an IR program for injection at start-up.

        Accepts a program name, an :class:`~repro.navp.ir.Program`, or
        an :class:`~repro.navp.interp.IRMessenger` (whose continuation
        must be at the start). Plain generator messengers are rejected:
        their state lives in an unpicklable generator frame, and this
        fabric ships state between address spaces on every hop.
        """
        if isinstance(program, Messenger):
            interp = getattr(program, "interp", None)
            if interp is None:
                raise ConfigurationError(
                    f"the process fabric runs IR messengers only — "
                    f"{type(program).__name__} is a generator messenger "
                    f"whose state cannot be pickled across processes; "
                    f"use SimFabric/ThreadFabric, or express the program "
                    f"in the navigational IR")
            if env is not None:
                raise ConfigurationError(
                    "env is implied by the IRMessenger; do not pass both")
            env = dict(interp.env)
            program = interp.program
        if isinstance(program, ir.Program):
            self._programs[program.name] = program
            name = program.name
        else:
            name = program
            self._programs[name] = ir.get_program(name)
        self._collect_referenced(self._programs[name])
        self._initial.append(
            (self.topology.normalize(coord), name, dict(env or {})))

    def _collect_referenced(self, program: ir.Program) -> None:
        """Pull in programs reachable through Inject statements."""

        def walk(body):
            for stmt in body:
                if isinstance(stmt, ir.InjectStmt):
                    if stmt.program not in self._programs:
                        child = ir.get_program(stmt.program)
                        self._programs[stmt.program] = child
                        walk(child.body)
                elif isinstance(stmt, ir.For):
                    walk(stmt.body)
                elif isinstance(stmt, ir.If):
                    walk(stmt.then)
                    walk(stmt.orelse)

        walk(program.body)

    # -- execution --------------------------------------------------------
    def run(self) -> FabricResult:
        if not self._initial:
            raise FabricError("no messengers injected")
        if self.resilient:
            return self._run_resilient()
        return self._run_plain()

    def _run_plain(self) -> FabricResult:
        t0 = time.perf_counter()
        coords = list(self.topology.coords)
        host_queues = {h: self._ctx.Queue() for h in range(self.n_hosts)}
        report_queue = self._ctx.Queue()
        coords_of_host = {
            h: [c for c in coords if self._host_of[c] == h]
            for h in range(self.n_hosts)
        }
        workers = [
            self._ctx.Process(
                target=_worker,
                args=(h, coords_of_host[h], self._host_of, host_queues[h],
                      host_queues, report_queue),
                daemon=True,
                name=f"host{h}",
            )
            for h in range(self.n_hosts)
        ]
        for w in workers:
            w.start()
        try:
            programs = list(self._programs.values())
            for h in range(self.n_hosts):
                host_queues[h].put(("register", programs))
            for c in coords:
                if self._loads[c]:
                    host_queues[self._host_of[c]].put(
                        ("load", c, self._loads[c]))
            for coord, name, args, count in self._signals:
                host_queues[self._host_of[coord]].put(
                    ("signal0", (coord, name, args, count)))

            known: set = set()
            done: set = set()
            for coord, name, env in self._initial:
                mid = f"m{self._counter}"
                self._counter += 1
                known.add(mid)
                host_queues[self._host_of[coord]].put(("run", (
                    mid, [], 0, coord,
                    Interp(name, env).agent_snapshot(), 0,
                )))

            deadline = time.monotonic() + self.timeout
            while not known <= done:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlockError(
                        f"process fabric timed out; "
                        f"{len(known - done)} messenger(s) unaccounted"
                    )
                try:
                    msg = report_queue.get(timeout=min(remaining, 1.0))
                except queue_mod.Empty:
                    continue
                if msg[0] == "error":
                    raise FabricError(
                        f"worker {msg[1]} failed: {msg[2]}")
                if msg[0] == "done":
                    done.add(msg[1])
                    known.update(msg[2])

            for h in range(self.n_hosts):
                host_queues[h].put(("collect",))
            places: dict = {}
            hosts_seen: set = set()
            while len(hosts_seen) < self.n_hosts:
                msg = report_queue.get(timeout=self.timeout)
                if msg[0] == "error":
                    raise FabricError(f"worker {msg[1]} failed: {msg[2]}")
                if msg[0] == "vars":
                    hosts_seen.add(msg[1])
                    places.update(msg[2])
        finally:
            for h in range(self.n_hosts):
                try:
                    host_queues[h].put(("stop",))
                except Exception:  # pragma: no cover - shutdown races
                    pass
            for w in workers:
                w.join(timeout=5.0)
                if w.is_alive():
                    w.terminate()
        return FabricResult(
            time=time.perf_counter() - t0,
            trace=self.trace,
            places=places,
        )

    def _run_resilient(self) -> FabricResult:
        """The supervised twin of :meth:`_run_plain` (see the module
        docstring for the protocol)."""
        t0 = time.perf_counter()
        runtime = PlanRuntime(self._plan, self._resolve_host)
        ledger = ReplayLedger()
        tracing = self.trace.enabled
        coords = list(self.topology.coords)
        report_queue = self._ctx.Queue()
        coords_of_host = {
            h: [c for c in coords if self._host_of[c] == h]
            for h in range(self.n_hosts)
        }
        programs = list(self._programs.values())
        workers: dict = {}
        host_queues: dict = {}
        ckpt_state: dict = {}       # host -> last committed state
        ckpt_marks: dict = {}       # ckpt id -> {host: journal length}
        ckpt_seq = 0
        forwards_since_ckpt = 0

        def spawn(h):
            q = self._ctx.Queue()
            w = self._ctx.Process(
                target=_worker,
                args=(h, coords_of_host[h], self._host_of, q, None,
                      report_queue, True),
                daemon=True, name=f"host{h}",
            )
            w.start()
            workers[h] = w
            host_queues[h] = q
            q.put(("register", programs))
            return w

        def send(h, cmd):
            ledger.append(h, cmd)
            host_queues[h].put(cmd)

        def respawn(h):
            if not self._recovery.enabled:
                raise ResilienceError(
                    f"worker {h} died and recovery is disabled")
            if self.restarts[h] >= self._max_restarts:
                raise ResilienceError(
                    f"worker {h} exhausted its respawn budget "
                    f"({self._max_restarts})")
            self.restarts[h] += 1
            FAULT_STATS["masked"] += 1
            old = workers[h]
            if old.is_alive():  # pragma: no cover - defensive
                old.terminate()
            old.join(timeout=5.0)
            spawn(h)
            state = ckpt_state.get(h)
            if state is not None:
                host_queues[h].put(("restore", state))
            for cmd in ledger.entries(h):
                host_queues[h].put(cmd)
            if tracing:
                now = time.perf_counter() - t0
                self.trace.record(
                    t0=now, t1=now, place=h, actor="supervisor",
                    kind="respawn",
                    note=f"worker {h} respawned "
                         f"(restart {self.restarts[h]}, replay "
                         f"{len(ledger.entries(h))} cmd(s))")

        def checkpoint_all():
            nonlocal ckpt_seq, forwards_since_ckpt
            ckpt_seq += 1
            ckpt_marks[ckpt_seq] = {
                h: len(ledger.entries(h)) for h in range(self.n_hosts)}
            for h in range(self.n_hosts):
                host_queues[h].put(("ckpt", ckpt_seq))
            forwards_since_ckpt = 0

        for h in range(self.n_hosts):
            spawn(h)
        try:
            for c in coords:
                if self._loads[c]:
                    send(self._host_of[c], ("load", c, self._loads[c]))
            for coord, name, args, count in self._signals:
                send(self._host_of[coord],
                     ("signal0", (coord, name, args, count)))
            known: set = set()
            done: set = set()
            for coord, name, env in self._initial:
                mid = f"m{self._counter}"
                self._counter += 1
                known.add(mid)
                send(self._host_of[coord], ("run", (
                    mid, [], 0, coord,
                    Interp(name, env).agent_snapshot(), 0,
                )))

            deadline = time.monotonic() + self.timeout
            while not known <= done:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlockError(
                        f"process fabric timed out; "
                        f"{len(known - done)} messenger(s) unaccounted "
                        f"({sum(self.restarts.values())} respawn(s))"
                    )
                # fire due crash specs: a crash is a real SIGKILL
                if runtime.pending_crashes():
                    now = time.perf_counter() - t0
                    for spec, h in runtime.due_crashes(now):
                        w = workers[h]
                        if w.is_alive():
                            FAULT_STATS["fired"] += 1
                            os.kill(w.pid, signal.SIGKILL)
                            if tracing:
                                self.trace.record(
                                    t0=now, t1=now, place=h,
                                    actor="fault-injector", kind="fault",
                                    note=f"worker {h} SIGKILLed")
                # supervise: any dead worker is respawned and replayed
                for h, w in list(workers.items()):
                    if not w.is_alive():
                        respawn(h)
                try:
                    msg = report_queue.get(timeout=min(remaining, 0.2))
                except queue_mod.Empty:
                    continue
                op = msg[0]
                if op == "error":
                    raise FabricError(
                        f"worker {msg[1]} failed: {msg[2]}")
                if op == "done":
                    done.add(msg[1])
                    known.update(msg[2])
                elif op == "hop":
                    _, dst_host, payload = msg
                    runtime.note_hop()
                    spec = runtime.message_action(
                        "hop", -1, dst_host) if self._plan.message_faults \
                        else None
                    if spec is not None and spec.action == "drop":
                        FAULT_STATS["fired"] += 1
                        if not self._recovery.enabled:
                            FAULT_STATS["lost"] += 1
                            continue  # the continuation is gone
                        FAULT_STATS["masked"] += 1  # retransmitted
                    send(dst_host, ("run", payload))
                    forwards_since_ckpt += 1
                    if (self._checkpoint_every is not None
                            and forwards_since_ckpt
                            >= self._checkpoint_every):
                        checkpoint_all()
                elif op == "ckpt":
                    _, h, cid, state = msg
                    ckpt_state[h] = state
                    marks = ckpt_marks.get(cid)
                    if marks is not None and h in marks:
                        ledger.truncate(h, marks.pop(h))
                    if tracing:
                        now = time.perf_counter() - t0
                        self.trace.record(
                            t0=now, t1=now, place=h, actor="supervisor",
                            kind="checkpoint", note=f"ckpt {cid}")

            for h in range(self.n_hosts):
                host_queues[h].put(("collect",))
            places: dict = {}
            hosts_seen: set = set()
            while len(hosts_seen) < self.n_hosts:
                msg = report_queue.get(timeout=self.timeout)
                if msg[0] == "error":
                    raise FabricError(f"worker {msg[1]} failed: {msg[2]}")
                if msg[0] == "vars":
                    hosts_seen.add(msg[1])
                    places.update(msg[2])
        finally:
            for h in range(self.n_hosts):
                try:
                    host_queues[h].put(("stop",))
                except Exception:  # pragma: no cover - shutdown races
                    pass
            for w in workers.values():
                w.join(timeout=5.0)
                if w.is_alive():
                    w.terminate()
        return FabricResult(
            time=time.perf_counter() - t0,
            trace=self.trace,
            places=places,
        )
