"""ProcessFabric: PEs as OS processes, migration as pickled state.

This is the faithful end of the fabric spectrum: every PE is a real
``multiprocessing.Process`` with its own address space. Node variables
never leave their process; when an IR messenger hops, its continuation
— program name, control stack, agent environment — is pickled and
shipped through an inter-process queue, exactly the MESSENGERS
discipline ("the state of the computation is moved on each hop, the
code is not moved"). Programs are installed into every worker once at
start-up, like compiled messenger code loaded by each daemon.

Only IR messengers run here: CPython cannot pickle a live generator
frame, and the IR interpreter's explicit continuation is the honest
equivalent of MESSENGERS' compiled resumption points (see DESIGN.md).
The worker execution engine and the setup-side API are shared with the
TCP-transport :class:`~repro.fabric.socket.SocketFabric` — see
:mod:`repro.fabric.controller`.

Termination uses parental accounting: every messenger's completion
report names the children it injected; the controller is done when the
set of known messengers equals the set of completed ones — correct
under arbitrary report reordering across queues, since a parent's
report both introduces and is required for its children.

Resilient mode
--------------
With a fault plan (or ``supervise=True``) the fabric runs in resilient
mode, and a worker process can be SIGKILLed mid-run and the run still
completes:

* every cross-host hop routes through the **controller** (workers stop
  writing peer queues), which journals each command per destination
  host in a :class:`~repro.resilience.recovery.ReplayLedger`;
* deliveries carry a ``(messenger id, hop count)`` key and each worker
  keeps a seen-set, so replayed deliveries are processed exactly once
  — a replayed continuation that re-emits a hop the original already
  made is discarded at the destination, while its *new* hops (ones the
  dead original never made) carry unseen keys and proceed;
* on a ``ckpt`` marker a worker replies — at task-queue quiescence, so
  no continuation is ever split by the cut — with its full state
  (node variables, event counts, parked waiters, ready tasks, seen
  keys); the controller then truncates that host's journal to the
  entries forwarded after the marker (every inter-host message passes
  through the journal, which is what makes the per-host cut globally
  consistent);
* a dead worker is respawned with a fresh queue, re-registered,
  restored from its last checkpoint, and replayed from the journal.

Losing a worker therefore loses only the work since its last
checkpoint, and that work is re-executed deterministically. Without a
checkpoint the journal reaches back to start-up and replay simply
re-runs the host's history. Crash specs name *host* indices and fire
on wall-clock time or on the global forwarded-hop count.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import signal
import time

from ..errors import DeadlockError, FabricError
from ..resilience.faults import STATS as FAULT_STATS
from ..resilience.faults import PlanRuntime
from ..navp.interp import Interp
from . import payload as payload_mod
from .controller import (ControllerFabric, WorkerCore, hop_fault_verdict,
                         reap_workers)
from .sim import FabricResult

__all__ = ["ProcessFabric"]


def _worker(host, coords, host_of, in_queue, host_queues, report_queue,
            resilient=False, tracing=False):
    """One host process around a :class:`WorkerCore`.

    Plain mode writes peer queues directly and (when tracing) keeps a
    local hop log shipped with the collect reply — deterministic,
    unlike racing per-hop reports against the peers' completion
    reports. Resilient mode emits every hop to the controller.
    """
    hop_log: list = []  # (src, dst, nbytes, mid) per emitted hop

    def emit_hop(dst_host, payload):
        if resilient:
            report_queue.put(("hop", host, dst_host, payload))
            return
        if tracing:
            hop_log.append((host, dst_host,
                            payload_mod.encoded_nbytes(payload),
                            payload[0]))
        host_queues[dst_host].put(("run", payload))

    def emit_report(msg):
        if tracing and msg[0] == "vars":
            report_queue.put(("hoplog", host, hop_log))
        report_queue.put(msg)

    core = WorkerCore(host, coords, host_of, emit_hop, emit_report,
                      dedup=resilient)
    try:
        while True:
            if core.ready:
                core.step()
                continue
            if core.handle(in_queue.get()) == "stop":
                return
    except BaseException as exc:  # noqa: BLE001 - forwarded to controller
        report_queue.put(("error", host, f"{type(exc).__name__}: {exc}"))


class ProcessFabric(ControllerFabric):
    """Multiprocessing executor for IR messengers."""

    kind = "process"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._ctx = mp.get_context("fork")

    # -- execution --------------------------------------------------------
    def run(self) -> FabricResult:
        if not self._initial:
            raise FabricError("no messengers injected")
        if self.resilient:
            return self._run_resilient()
        return self._run_plain()

    def _record_hop(self, now, src, dst, nbytes, mid) -> None:
        self.trace.record(t0=now, t1=now, place=dst, actor=mid,
                          kind="hop", note="hop", src_place=src,
                          nbytes=nbytes)

    def _run_plain(self) -> FabricResult:
        t0 = time.perf_counter()
        tracing = self.trace.enabled
        coords = list(self.topology.coords)
        host_queues = {h: self._ctx.Queue() for h in range(self.n_hosts)}
        report_queue = self._ctx.Queue()
        coords_of_host = {
            h: [c for c in coords if self._host_of[c] == h]
            for h in range(self.n_hosts)
        }
        workers = [
            self._ctx.Process(
                target=_worker,
                args=(h, coords_of_host[h], self._host_of, host_queues[h],
                      host_queues, report_queue, False, tracing),
                daemon=True,
                name=f"host{h}",
            )
            for h in range(self.n_hosts)
        ]
        for w in workers:
            w.start()
        try:
            programs = list(self._programs.values())
            for h in range(self.n_hosts):
                host_queues[h].put(("register", programs))
            for c in coords:
                if self._loads[c]:
                    host_queues[self._host_of[c]].put(
                        ("load", c, self._loads[c]))
            for coord, name, args, count in self._signals:
                host_queues[self._host_of[coord]].put(
                    ("signal0", (coord, name, args, count)))

            known: set = set()
            done: set = set()
            for coord, name, env in self._initial:
                mid = f"m{self._counter}"
                self._counter += 1
                known.add(mid)
                host_queues[self._host_of[coord]].put(("run", (
                    mid, [], 0, coord,
                    Interp(name, env).agent_snapshot(), 0,
                )))

            deadline = time.monotonic() + self.timeout
            while not known <= done:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlockError(
                        f"process fabric timed out; "
                        f"{len(known - done)} messenger(s) unaccounted"
                        f"{self._mc_hint()}"
                    )
                try:
                    msg = report_queue.get(timeout=min(remaining, 1.0))
                except queue_mod.Empty:
                    continue
                if msg[0] == "error":
                    raise FabricError(
                        f"worker {msg[1]} failed: {msg[2]}")
                if msg[0] == "done":
                    done.add(msg[1])
                    known.update(msg[2])

            for h in range(self.n_hosts):
                host_queues[h].put(("collect",))
            places: dict = {}
            hosts_seen: set = set()
            while len(hosts_seen) < self.n_hosts:
                msg = report_queue.get(timeout=self.timeout)
                if msg[0] == "error":
                    raise FabricError(f"worker {msg[1]} failed: {msg[2]}")
                if msg[0] == "hoplog":
                    now = time.perf_counter() - t0
                    for src, dst, nbytes, mid in msg[2]:
                        self._record_hop(now, src, dst, nbytes, mid)
                elif msg[0] == "vars":
                    hosts_seen.add(msg[1])
                    places.update(msg[2])
        finally:
            for h in range(self.n_hosts):
                try:
                    host_queues[h].put(("stop",))
                except Exception:  # pragma: no cover - shutdown races
                    pass
            reap_workers(workers)
        return FabricResult(
            time=time.perf_counter() - t0,
            trace=self.trace,
            places=places,
        )

    def _run_resilient(self) -> FabricResult:
        """The supervised twin of :meth:`_run_plain` (see the module
        docstring for the protocol)."""
        t0 = time.perf_counter()
        runtime = PlanRuntime(self._plan, self._resolve_host)
        sup = self._sup
        tracing = self.trace.enabled
        coords = list(self.topology.coords)
        report_queue = self._ctx.Queue()
        coords_of_host = {
            h: [c for c in coords if self._host_of[c] == h]
            for h in range(self.n_hosts)
        }
        programs = list(self._programs.values())
        workers: dict = {}
        host_queues: dict = {}

        def spawn(h):
            q = self._ctx.Queue()
            w = self._ctx.Process(
                target=_worker,
                args=(h, coords_of_host[h], self._host_of, q, None,
                      report_queue, True),
                daemon=True, name=f"host{h}",
            )
            w.start()
            workers[h] = w
            host_queues[h] = q
            q.put(("register", programs))
            return w

        def send(h, cmd):
            sup.journal(h, cmd)
            host_queues[h].put(cmd)

        def respawn(h):
            sup.authorize_respawn(h)
            FAULT_STATS["masked"] += 1
            old = workers[h]
            if old.is_alive():  # pragma: no cover - defensive
                old.terminate()
            old.join(timeout=5.0)
            spawn(h)
            state, replay = sup.recovery_script(h)
            if state is not None:
                host_queues[h].put(("restore", state))
            for cmd in replay:
                host_queues[h].put(cmd)
            if tracing:
                now = time.perf_counter() - t0
                self.trace.record(
                    t0=now, t1=now, place=h, actor="supervisor",
                    kind="respawn",
                    note=f"worker {h} respawned "
                         f"(restart {self.restarts[h]}, replay "
                         f"{len(replay)} cmd(s))")

        def checkpoint_all():
            cid = sup.begin_checkpoint(range(self.n_hosts))
            for h in range(self.n_hosts):
                host_queues[h].put(("ckpt", cid))

        try:
            # spawning inside the try: a spawn failure midway must not
            # leave the already-started workers orphaned
            for h in range(self.n_hosts):
                spawn(h)
            for c in coords:
                if self._loads[c]:
                    send(self._host_of[c], ("load", c, self._loads[c]))
            for coord, name, args, count in self._signals:
                send(self._host_of[coord],
                     ("signal0", (coord, name, args, count)))
            known: set = set()
            done: set = set()
            for coord, name, env in self._initial:
                mid = f"m{self._counter}"
                self._counter += 1
                known.add(mid)
                send(self._host_of[coord], ("run", (
                    mid, [], 0, coord,
                    Interp(name, env).agent_snapshot(), 0,
                )))

            deadline = time.monotonic() + self.timeout
            while not known <= done:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlockError(
                        f"process fabric timed out; "
                        f"{len(known - done)} messenger(s) unaccounted "
                        f"({sum(self.restarts.values())} respawn(s))"
                        f"{self._mc_hint()}"
                    )
                # fire due crash specs: a crash is a real SIGKILL
                if runtime.pending_crashes():
                    now = time.perf_counter() - t0
                    for spec, h in runtime.due_crashes(now):
                        w = workers[h]
                        if w.is_alive():
                            FAULT_STATS["fired"] += 1
                            os.kill(w.pid, signal.SIGKILL)
                            if tracing:
                                self.trace.record(
                                    t0=now, t1=now, place=h,
                                    actor="fault-injector", kind="fault",
                                    note=f"worker {h} SIGKILLed")
                # supervise: any dead worker is respawned and replayed
                for h, w in list(workers.items()):
                    if not w.is_alive():
                        respawn(h)
                try:
                    msg = report_queue.get(timeout=min(remaining, 0.2))
                except queue_mod.Empty:
                    continue
                op = msg[0]
                if op == "error":
                    raise FabricError(
                        f"worker {msg[1]} failed: {msg[2]}")
                if op == "done":
                    done.add(msg[1])
                    known.update(msg[2])
                elif op == "hop":
                    _, src_host, dst_host, payload = msg
                    verdict, spec = hop_fault_verdict(
                        runtime, dst_host, self._recovery.enabled)
                    now = time.perf_counter() - t0
                    if verdict == "lost":
                        FAULT_STATS["fired"] += 1
                        FAULT_STATS["lost"] += 1
                        if tracing:
                            self.trace.record(
                                t0=now, t1=now, place=dst_host,
                                actor=payload[0], kind="fault",
                                note="hop dropped (lost)",
                                src_place=src_host,
                                nbytes=payload_mod.encoded_nbytes(
                                    payload))
                        continue  # the continuation is gone
                    if verdict == "retransmit":
                        FAULT_STATS["fired"] += 1
                        FAULT_STATS["masked"] += 1
                        if tracing:
                            self.trace.record(
                                t0=now, t1=now, place=dst_host,
                                actor=payload[0], kind="fault",
                                note="hop dropped (retransmitting)",
                                src_place=src_host)
                            self.trace.record(
                                t0=now, t1=now, place=dst_host,
                                actor=payload[0], kind="retry",
                                note="hop redelivered",
                                src_place=src_host)
                    elif verdict == "duplicate":
                        FAULT_STATS["fired"] += 1
                        FAULT_STATS["masked"] += 1
                        if tracing:
                            self.trace.record(
                                t0=now, t1=now, place=dst_host,
                                actor=payload[0], kind="fault",
                                note="hop duplicated (dedup masks)",
                                src_place=src_host)
                        send(dst_host, ("run", payload))  # the extra copy
                    elif verdict == "delay":
                        FAULT_STATS["fired"] += 1
                        FAULT_STATS["masked"] += 1
                        if tracing:
                            self.trace.record(
                                t0=now, t1=now, place=dst_host,
                                actor=payload[0], kind="fault",
                                note=f"hop delayed {spec.seconds}s",
                                src_place=src_host)
                        time.sleep(min(spec.seconds, 0.1))
                    send(dst_host, ("run", payload))
                    if tracing:
                        self._record_hop(
                            now, src_host, dst_host,
                            payload_mod.encoded_nbytes(payload),
                            payload[0])
                    sup.note_forward()
                    if (self._checkpoint_every is not None
                            and sup.forwards_since_ckpt
                            >= self._checkpoint_every):
                        checkpoint_all()
                elif op == "ckpt":
                    _, h, cid, state = msg
                    sup.commit_checkpoint(h, cid, state)
                    if tracing:
                        now = time.perf_counter() - t0
                        self.trace.record(
                            t0=now, t1=now, place=h, actor="supervisor",
                            kind="checkpoint", note=f"ckpt {cid}")

            for h in range(self.n_hosts):
                host_queues[h].put(("collect",))
            places: dict = {}
            hosts_seen: set = set()
            while len(hosts_seen) < self.n_hosts:
                msg = report_queue.get(timeout=self.timeout)
                if msg[0] == "error":
                    raise FabricError(f"worker {msg[1]} failed: {msg[2]}")
                if msg[0] == "vars":
                    hosts_seen.add(msg[1])
                    places.update(msg[2])
        finally:
            for h, q in host_queues.items():
                try:
                    q.put(("stop",))
                except Exception:  # pragma: no cover - shutdown races
                    pass
            reap_workers(workers.values())
        return FabricResult(
            time=time.perf_counter() - t0,
            trace=self.trace,
            places=places,
        )
