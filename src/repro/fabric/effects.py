"""The effect vocabulary — the "instruction set" of a fabric.

Messengers (and MPI ranks) are plain Python generators that *yield*
effect objects; the fabric executing them decides what each effect
costs and when the generator resumes. This indirection is what lets
the same algorithm code run on:

* :class:`repro.fabric.sim.SimFabric` — virtual time, calibrated costs;
* :class:`repro.fabric.threads.ThreadFabric` — real threads, wall clock;
* :class:`repro.fabric.process.ProcessFabric` — real OS processes with
  pickled-state migration (IR messengers).

Effects and their NavP reading:

========================  ==============================================
:class:`Hop`              ``hop(node(...))`` — migrate the computation,
                          carrying the agent variables
:class:`Inject`           ``inject(Messenger(...))`` — spawn locally
:class:`Compute`          run a kernel; cost is its flop count
:class:`WaitEvent`        ``waitEvent(E(...))`` (place-local, counting)
:class:`SignalEvent`      ``signalEvent(E(...))``
:class:`Send`             MPI blocking (buffered) send
:class:`Recv`             MPI blocking receive
:class:`IRecv`            MPI non-blocking receive; yields a request
:class:`WaitRequest`      ``MPI_Wait`` on an :class:`IRecv` request
:class:`Delay`            plain virtual think-time
========================  ==============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "Effect",
    "Hop",
    "Inject",
    "Compute",
    "WaitEvent",
    "SignalEvent",
    "Send",
    "Recv",
    "IRecv",
    "WaitRequest",
    "Delay",
    "ANY_SOURCE",
]

# Wildcard source for Recv/IRecv, like MPI_ANY_SOURCE.
ANY_SOURCE = None


class Effect:
    """Marker base class for everything a messenger may yield."""

    __slots__ = ()


@dataclass(frozen=True)
class Hop(Effect):
    """Migrate the yielding messenger to ``coord``.

    ``nbytes`` overrides the payload size; when None the fabric charges
    the modeled size of the messenger's agent variables plus the
    machine's per-hop state overhead ("the cost of a hop() is
    essentially the cost of moving the data stored in agent variables
    plus a small amount of state data" — Section 2).
    """

    coord: tuple
    nbytes: int | None = None


@dataclass(frozen=True)
class Inject(Effect):
    """Spawn ``messenger`` at the current place (injection is local)."""

    messenger: Any


@dataclass(frozen=True)
class Compute(Effect):
    """Execute ``fn`` and charge ``flops`` of CPU time.

    The generator receives ``fn()``'s return value when resumed. ``fn``
    always runs (numerics are real whenever real arrays were loaded;
    with :class:`~repro.util.shadow.ShadowArray` data it costs almost
    nothing), while the *charged* time is ``flops`` at the machine's
    calibrated rate times the cache factor for ``kind`` (one of
    ``"sequential" | "navp" | "mpi"`` or None).
    """

    fn: Callable[[], Any] | None = None
    flops: float = 0.0
    kind: str | None = None
    note: str = ""


@dataclass(frozen=True)
class WaitEvent(Effect):
    """``waitEvent`` on the *current place's* event table (counting)."""

    name: str
    args: tuple = ()


@dataclass(frozen=True)
class SignalEvent(Effect):
    """``signalEvent`` on the current place's event table.

    ``count`` releases several waiters at once (used when one producer
    enables a whole batch of consumers, e.g. the 2-D DSC ColCarrier
    enabling every strip carrier of a grid row).
    """

    name: str
    args: tuple = ()
    count: int = 1


@dataclass(frozen=True)
class Send(Effect):
    """Buffered point-to-point send to ``dst``.

    With ``blocking=True`` (``MPI_Send``) the sender is occupied while
    the message drains onto its NIC; with ``blocking=False``
    (``MPI_Isend`` with buffering) the transfer proceeds in the
    background and the sender continues immediately.
    """

    dst: tuple
    tag: Any
    payload: Any = None
    nbytes: int | None = None
    blocking: bool = True


@dataclass(frozen=True)
class Recv(Effect):
    """Blocking receive matching ``(src, tag)``; resumes with the payload."""

    src: tuple | None = ANY_SOURCE
    tag: Any = None


@dataclass(frozen=True)
class IRecv(Effect):
    """Non-blocking receive; resumes immediately with a request handle."""

    src: tuple | None = ANY_SOURCE
    tag: Any = None


@dataclass(frozen=True)
class WaitRequest(Effect):
    """Block until ``request`` completes; resumes with the payload."""

    request: Any = None


@dataclass(frozen=True)
class Delay(Effect):
    """Advance local time without holding the CPU (think time)."""

    seconds: float = 0.0
