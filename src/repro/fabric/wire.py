"""Framed wire protocol for the socket fabric.

Every message on a socket-fabric TCP connection is one *frame*:

::

    0        4     5     6        8                16               20
    +--------+-----+-----+--------+----------------+----------------+
    | magic  | ver | kind| gen    | deadline (f64) | payload length |
    | "NAVP" | u8  | u8  | u16    | abs seconds    | u32            |
    +--------+-----+-----+--------+----------------+----------------+
    | payload: `length` bytes of pickle                             |
    +---------------------------------------------------------------+

* ``magic``/``ver`` reject accidental cross-talk and future format
  drift loudly instead of desynchronizing the stream;
* ``kind`` is a small frame-type tag (see ``FRAME_*``) so transport
  control (heartbeats, credits) never pays pickle costs;
* ``gen`` is the sender's **connection generation** — the controller
  bumps it on every respawn, and receivers drop frames from stale
  generations, so a zombie socket of a replaced worker cannot deliver;
* ``deadline`` is an absolute wall-clock second (0.0 = none),
  propagated hop to hop so a receiver can count frames that arrived
  late (deadlines are *soft*: late frames are still delivered);
* length-prefixing makes TCP's byte stream a message stream again.

:class:`FrameSocket` wraps a connected socket with locked sends (many
threads may share one outbound connection) and an incremental receive
buffer. It never interprets payloads — pickling happens at the fabric
layer, where the controller also measures the frame for the trace's
data-movement ledger.
"""

from __future__ import annotations

import socket
import struct
import threading

from ..errors import FabricError

__all__ = [
    "Frame",
    "FrameSocket",
    "WireError",
    "WireClosed",
    "encode_frame",
    "frame_nbytes",
    "FRAME_CMD",
    "FRAME_REPORT",
    "FRAME_RUN",
    "FRAME_HEARTBEAT",
    "FRAME_CREDIT",
    "FRAME_HELLO",
]

MAGIC = b"NAVP"
VERSION = 1
HEADER = struct.Struct("!4sBBHdI")  # magic, ver, kind, gen, deadline, len

# Frame kinds. CMD/REPORT carry the controller protocol of
# fabric/controller.py; RUN carries a peer-to-peer hop; HEARTBEAT,
# CREDIT and HELLO are transport control.
FRAME_CMD = 0        # controller -> worker command tuple
FRAME_REPORT = 1     # worker -> controller report tuple
FRAME_RUN = 2        # peer -> peer migrating continuation
FRAME_HEARTBEAT = 3  # worker -> controller liveness beat
FRAME_CREDIT = 4     # receiver -> sender flow-control credit
FRAME_HELLO = 5      # connection preamble (identity + generation)

# A continuation frame is a few KiB; anything near this bound is a
# desynchronized stream or a hostile peer, not a messenger.
MAX_FRAME = 256 * 1024 * 1024


class WireError(FabricError):
    """The byte stream violated the frame protocol."""


class WireClosed(WireError):
    """The peer closed the connection (EOF mid-stream included)."""


class Frame:
    __slots__ = ("kind", "gen", "deadline", "payload")

    def __init__(self, kind: int, gen: int, deadline: float, payload: bytes):
        self.kind = kind
        self.gen = gen
        self.deadline = deadline
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Frame(kind={self.kind}, gen={self.gen}, "
                f"deadline={self.deadline}, {len(self.payload)}B)")


def encode_frame(kind: int, payload: bytes, gen: int = 0,
                 deadline: float = 0.0) -> bytes:
    if len(payload) > MAX_FRAME:
        raise WireError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte bound")
    return HEADER.pack(MAGIC, VERSION, kind, gen, deadline,
                       len(payload)) + payload


def frame_nbytes(payload: bytes) -> int:
    """On-wire size of a frame carrying ``payload`` (header included)."""
    return HEADER.size + len(payload)


class FrameSocket:
    """A connected TCP socket speaking whole frames.

    ``send`` is serialized by a lock (the controller's forwarder and
    heartbeat/credit paths share outbound connections); ``recv`` is
    single-consumer per socket (each connection gets one reader
    thread), buffering partial reads until a whole frame is available.
    """

    __slots__ = ("sock", "_send_lock", "_buf")

    def __init__(self, sock: socket.socket):
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not TCP (e.g. a unix socketpair in tests)
        self.sock = sock
        self._send_lock = threading.Lock()
        self._buf = b""

    def send(self, kind: int, payload: bytes, gen: int = 0,
             deadline: float = 0.0) -> int:
        """Send one frame; returns its on-wire size."""
        data = encode_frame(kind, payload, gen, deadline)
        with self._send_lock:
            try:
                self.sock.sendall(data)
            except OSError as exc:
                raise WireClosed(f"send failed: {exc}") from exc
        return len(data)

    def _read_exact(self, n: int) -> bytes:
        while len(self._buf) < n:
            try:
                chunk = self.sock.recv(65536)
            except OSError as exc:
                raise WireClosed(f"recv failed: {exc}") from exc
            if not chunk:
                raise WireClosed("peer closed the connection")
            self._buf += chunk
        out, self._buf = self._buf[:n], self._buf[n:]
        return out

    def recv(self) -> Frame:
        """Block until one whole frame is available and return it."""
        header = self._read_exact(HEADER.size)
        magic, version, kind, gen, deadline, length = HEADER.unpack(header)
        if magic != MAGIC:
            raise WireError(f"bad frame magic {magic!r}")
        if version != VERSION:
            raise WireError(
                f"frame version {version} (this side speaks {VERSION})")
        if length > MAX_FRAME:
            raise WireError(f"frame length {length} exceeds bound")
        return Frame(kind, gen, deadline, self._read_exact(length))

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
