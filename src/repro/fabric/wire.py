"""Framed wire protocol for the socket fabric.

Every message on a socket-fabric TCP connection is one *frame*. Since
VERSION 2, a frame is multi-buffer: the pickle stream travels as the
*payload* and each out-of-band block buffer produced by
:mod:`repro.fabric.payload` travels as its own segment, described by a
buffer table between the header and the payload:

::

    0        4     5     6        8                16               20
    +--------+-----+-----+--------+----------------+----------------+
    | magic  | ver | kind| gen    | deadline (f64) | payload length |
    | "NAVP" | u8  | u8  | u16    | abs seconds    | u32            |
    +--------+-----+-----+--------+----------------+----------------+
    | nbufs  | buffer table: nbufs x u64 byte lengths               |
    | u16    |                                                      |
    +--------+------------------------------------------------------+
    | payload: `length` bytes of pickle stream                      |
    +---------------------------------------------------------------+
    | buffer 0 bytes | buffer 1 bytes | ... | buffer nbufs-1 bytes  |
    +---------------------------------------------------------------+

* ``magic``/``ver`` reject accidental cross-talk and format drift
  loudly instead of desynchronizing the stream — a VERSION-1 peer (no
  buffer table) is refused at the first frame, never half-parsed;
* ``kind`` is a small frame-type tag (see ``FRAME_*``) so transport
  control (heartbeats, credits) never pays pickle costs;
* ``gen`` is the sender's **connection generation** — the controller
  bumps it on every respawn, and receivers drop frames from stale
  generations, so a zombie socket of a replaced worker cannot deliver;
* ``deadline`` is an absolute wall-clock second (0.0 = none),
  propagated hop to hop so a receiver can count frames that arrived
  late (deadlines are *soft*: late frames are still delivered);
* length-prefixing makes TCP's byte stream a message stream again.

Neither side ever concatenates a frame: :meth:`FrameSocket.send`
scatter/gathers ``header | table | payload | buffers`` through
``socket.sendmsg`` (a single-buffer frame is the degenerate two-element
gather — the old header+payload join copy is gone), and
:meth:`FrameSocket.recv` reads each announced buffer straight into
freshly allocated storage via ``recv_into``, handing the payload codec
``memoryview``\\ s it can rebuild arrays over without another copy.

:class:`FrameSocket` wraps a connected socket with locked sends (many
threads may share one outbound connection) and an incremental receive
buffer. It never interprets payloads — pickling happens at the fabric
layer, where the controller also measures the frame for the trace's
data-movement ledger.
"""

from __future__ import annotations

import socket
import struct
import threading

from ..errors import FabricError

__all__ = [
    "Frame",
    "FrameSocket",
    "WireError",
    "WireClosed",
    "encode_frame",
    "frame_nbytes",
    "FRAME_CMD",
    "FRAME_REPORT",
    "FRAME_RUN",
    "FRAME_HEARTBEAT",
    "FRAME_CREDIT",
    "FRAME_HELLO",
]

MAGIC = b"NAVP"
VERSION = 2  # 2: multi-buffer frames (buffer table + out-of-band segments)
HEADER = struct.Struct("!4sBBHdIH")  # magic, ver, kind, gen, deadline,
#                                      payload len, buffer count
_LEN = struct.Struct("!Q")           # one buffer-table entry

# Frame kinds. CMD/REPORT carry the controller protocol of
# fabric/controller.py; RUN carries a peer-to-peer hop; HEARTBEAT,
# CREDIT and HELLO are transport control.
FRAME_CMD = 0        # controller -> worker command tuple
FRAME_REPORT = 1     # worker -> controller report tuple
FRAME_RUN = 2        # peer -> peer migrating continuation(s)
FRAME_HEARTBEAT = 3  # worker -> controller liveness beat
FRAME_CREDIT = 4     # receiver -> sender flow-control credit
FRAME_HELLO = 5      # connection preamble (identity + generation)

# A continuation frame is a few KiB plus its block buffers; anything
# near these bounds is a desynchronized stream or a hostile peer.
MAX_FRAME = 256 * 1024 * 1024
MAX_BUFFERS = 4096

# sendmsg iovec batching: Linux caps a single call at IOV_MAX (1024)
# segments; staying far under it keeps every call one syscall.
_IOV_BATCH = 64


class WireError(FabricError):
    """The byte stream violated the frame protocol."""


class WireClosed(WireError):
    """The peer closed the connection (EOF mid-stream included)."""


class Frame:
    __slots__ = ("kind", "gen", "deadline", "payload", "buffers")

    def __init__(self, kind: int, gen: int, deadline: float,
                 payload: bytes, buffers: list | None = None):
        self.kind = kind
        self.gen = gen
        self.deadline = deadline
        self.payload = payload
        self.buffers = buffers if buffers is not None else []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Frame(kind={self.kind}, gen={self.gen}, "
                f"deadline={self.deadline}, {len(self.payload)}B, "
                f"{len(self.buffers)} buffer(s))")


def _check_sizes(payload, buffers) -> int:
    """Validate bounds; returns the total on-wire size."""
    if len(buffers) > MAX_BUFFERS:
        raise WireError(
            f"frame carries {len(buffers)} buffers "
            f"(bound {MAX_BUFFERS})")
    total = HEADER.size + _LEN.size * len(buffers) + len(payload)
    for b in buffers:
        total += b.nbytes if isinstance(b, memoryview) else len(b)
    if total - HEADER.size > MAX_FRAME:
        raise WireError(
            f"frame of {total - HEADER.size} bytes exceeds the "
            f"{MAX_FRAME}-byte bound")
    return total


def _head_and_table(kind, payload, buffers, gen, deadline) -> bytes:
    """Header plus buffer table (tiny; the only joined bytes per frame)."""
    head = HEADER.pack(MAGIC, VERSION, kind, gen, deadline,
                       len(payload), len(buffers))
    if not buffers:
        return head
    sizes = [b.nbytes if isinstance(b, memoryview) else len(b)
             for b in buffers]
    return head + struct.pack(f"!{len(sizes)}Q", *sizes)


def encode_frame(kind: int, payload: bytes, gen: int = 0,
                 deadline: float = 0.0, buffers=()) -> bytes:
    """One frame as a single byte string (tests and diagnostics; the
    socket path gathers the parts instead of joining them)."""
    _check_sizes(payload, buffers)
    parts = [_head_and_table(kind, payload, buffers, gen, deadline),
             payload]
    parts.extend(bytes(b) for b in buffers)
    return b"".join(parts)


def frame_nbytes(payload, buffers=()) -> int:
    """On-wire size of a frame carrying ``payload`` (+ ``buffers``),
    header and buffer table included."""
    total = HEADER.size + _LEN.size * len(buffers) + len(payload)
    for b in buffers:
        total += b.nbytes if isinstance(b, memoryview) else len(b)
    return total


class FrameSocket:
    """A connected TCP socket speaking whole (multi-buffer) frames.

    ``send`` is serialized by a lock (the controller's forwarder and
    heartbeat/credit paths share outbound connections); ``recv`` is
    single-consumer per socket (each connection gets one reader
    thread), buffering partial reads until a whole frame is available.
    """

    __slots__ = ("sock", "_send_lock", "_buf", "_pos")

    def __init__(self, sock: socket.socket):
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not TCP (e.g. a unix socketpair in tests)
        self.sock = sock
        self._send_lock = threading.Lock()
        self._buf = bytearray()
        self._pos = 0

    # -- send ----------------------------------------------------------
    def send(self, kind: int, payload, gen: int = 0,
             deadline: float = 0.0, buffers=()) -> int:
        """Send one frame (scatter/gather, no joining); returns its
        on-wire size. ``buffers`` are shipped out-of-band, in order."""
        total = _check_sizes(payload, buffers)
        parts = [_head_and_table(kind, payload, buffers, gen, deadline),
                 payload]
        parts.extend(buffers)
        with self._send_lock:
            try:
                self._send_parts(parts, total)
            except OSError as exc:
                raise WireClosed(f"send failed: {exc}") from exc
        return total

    def _send_parts(self, parts, total: int) -> None:
        """Vectored write of every part, handling partial sends."""
        sendmsg = getattr(self.sock, "sendmsg", None)
        if sendmsg is None:  # pragma: no cover - exotic socket object
            self.sock.sendall(b"".join(bytes(p) for p in parts))
            return
        sent = 0
        if len(parts) <= _IOV_BATCH:
            sent = sendmsg(parts)
            if sent == total:
                return  # fast path: one gather took the whole frame
        # slow path (kernel buffer full or huge iovec): flat byte
        # views, advancing past whatever each call accepted
        views = [memoryview(p) for p in parts if len(p)]
        views = [v if v.ndim == 1 and v.format == "B" else v.cast("B")
                 for v in views]
        n = sent
        while True:
            # advance past the n bytes the kernel accepted
            while n > 0:
                head = views[0]
                if n >= len(head):
                    n -= len(head)
                    views.pop(0)
                else:
                    views[0] = head[n:]
                    n = 0
            if not views:
                return
            n = sendmsg(views[:_IOV_BATCH])

    # -- receive -------------------------------------------------------
    def _fill(self, n: int) -> None:
        """Buffer at least ``n`` unconsumed bytes."""
        if self._pos > 65536:  # drop consumed prefix before growing
            del self._buf[:self._pos]
            self._pos = 0
        while len(self._buf) - self._pos < n:
            try:
                chunk = self.sock.recv(65536)
            except OSError as exc:
                raise WireClosed(f"recv failed: {exc}") from exc
            if not chunk:
                raise WireClosed("peer closed the connection")
            self._buf += chunk

    def _read_exact(self, n: int) -> bytes:
        self._fill(n)
        pos = self._pos
        out = bytes(memoryview(self._buf)[pos:pos + n])
        self._pos = pos + n
        if self._pos >= len(self._buf):  # fully drained: reset cheaply
            self._buf = bytearray()
            self._pos = 0
        return out

    def _read_into(self, view: memoryview) -> None:
        """Fill ``view`` exactly: drain the buffer, then read straight
        into the destination (no intermediate copies for bulk data)."""
        n = len(view)
        pos = 0
        buffered = len(self._buf) - self._pos
        if buffered:
            take = min(buffered, n)
            view[:take] = memoryview(self._buf)[self._pos:
                                                self._pos + take]
            self._pos += take
            if self._pos >= len(self._buf):
                self._buf = bytearray()
                self._pos = 0
            pos = take
        while pos < n:
            try:
                got = self.sock.recv_into(view[pos:])
            except OSError as exc:
                raise WireClosed(f"recv failed: {exc}") from exc
            if not got:
                raise WireClosed("peer closed the connection")
            pos += got

    def recv(self) -> Frame:
        """Block until one whole frame is available and return it.

        Out-of-band buffers are read into freshly allocated storage and
        returned as writable ``memoryview``\\ s — the payload codec
        rebuilds arrays over them with no further copy, and ownership
        is the frame's alone (nothing else aliases the storage).
        """
        header = self._read_exact(HEADER.size)
        magic, version, kind, gen, deadline, length, nbufs = \
            HEADER.unpack(header)
        if magic != MAGIC:
            raise WireError(f"bad frame magic {magic!r}")
        if version != VERSION:
            raise WireError(
                f"frame version {version} (this side speaks {VERSION}); "
                f"mixed-version peers must be upgraded together")
        if length > MAX_FRAME:
            raise WireError(f"frame length {length} exceeds bound")
        if nbufs > MAX_BUFFERS:
            raise WireError(f"frame buffer count {nbufs} exceeds bound")
        sizes = ()
        if nbufs:
            table = self._read_exact(_LEN.size * nbufs)
            sizes = struct.unpack(f"!{nbufs}Q", table)
            if length + sum(sizes) > MAX_FRAME:
                raise WireError(
                    f"frame of {length + sum(sizes)} bytes (payload + "
                    f"buffer table) exceeds bound")
        payload = self._read_exact(length)
        buffers = []
        for size in sizes:
            view = memoryview(bytearray(size))
            self._read_into(view)
            buffers.append(view)
        return Frame(kind, gen, deadline, payload, buffers)

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
