"""SimFabric: virtual-time execution of messengers on a modeled cluster.

Each PE gets a CPU resource (the MESSENGERS daemon executes one ready
messenger at a time, like a single-core workstation), an outbound NIC
and an inbound NIC (full-duplex switched Ethernet — concurrent send and
receive, but each direction serializes, which is what makes owner-side
contention visible in the ``doall`` experiment). Costs come from a
:class:`~repro.machine.spec.MachineSpec`.

An uncontended hop or message takes ``latency + nbytes/bandwidth``:
the sender's NIC is held for the bandwidth term while the in-flight
portion overlaps it (cut-through pipelining), and the receiver's NIC is
held for the bandwidth term on arrival.

Numerics always execute (see :class:`repro.fabric.effects.Compute`);
load :class:`~repro.util.shadow.ShadowArray` node variables to simulate
paper-scale problems in milliseconds.

Hot-path notes: effects dispatch through a class-keyed handler table
(exact type hit; subclasses resolve once and are cached), the dominant
effect — an uncontended :class:`~repro.fabric.effects.Compute` — takes
the CPU slot synchronously and yields a single Timeout instead of an
acquire/timeout/release round-trip, and every ``trace.record`` call is
guarded by ``self._tracing`` so ``trace=False`` runs never even build
the event kwargs.
"""

from __future__ import annotations

from collections import deque
from copy import deepcopy
from dataclasses import dataclass, field
from typing import Any, NamedTuple

from ..errors import FabricError, TopologyError
from ..machine import cache_factors as compute_cache_factors
from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..resilience.checkpoint import ConsistentCut, MemoryStore
from ..resilience.faults import FaultPlan, PlanRuntime
from ..resilience.faults import STATS as FAULT_STATS
from ..resilience.faults import ambient as ambient_faults
from ..resilience.recovery import RecoveryPolicy
from . import effects as fx
from .desim import Resource, Semaphore, Simulator, Timeout, Trigger
from .hosts import resolve_hosts
from .sizes import agent_nbytes, model_nbytes
from .topology import Topology
from .trace import TraceLog

__all__ = ["SimFabric", "SimPlace", "Message", "FabricResult"]


class _MessengerLost(Exception):
    """Internal: a fault destroyed this messenger (recovery disabled).

    Raised inside an effect handler and caught by the driver, which
    retires the messenger without failing the simulation — the paper's
    programs then deadlock on the events the dead messenger would have
    signaled, and :meth:`SimFabric._deadlock_hint` names the casualty.
    """


class _Resilience:
    """Per-fabric fault/checkpoint state (absent => zero overhead).

    ``SimFabric`` keeps ``self._resil is None`` unless a non-empty
    fault plan or a checkpoint store is configured, and every hook in
    the hot paths is guarded by that single identity test — an empty
    plan runs byte-identically to a fabric built without resilience.
    """

    __slots__ = ("runtime", "recovery", "store", "dead", "lost",
                 "current", "track", "channel", "chan_seq", "procs")

    def __init__(self, fabric: "SimFabric", plan: FaultPlan,
                 recovery, store):
        self.runtime = PlanRuntime(plan, fabric._resolve_place)
        self.recovery = RecoveryPolicy.coerce(recovery)
        self.store = store if store is not None else MemoryStore()
        self.dead: set = set()        # place indices killed, unmasked
        self.lost: list = []          # messenger names destroyed by faults
        self.current: dict = {}       # name -> (place, snap, messenger, eff)
        self.track = False            # maintain `current` (snapshots armed)
        self.channel: dict = {}       # in-flight sends: key -> (dst, Message)
        self.chan_seq = 0
        self.procs: dict = {}         # messenger name -> SimProcess


class Message(NamedTuple):
    """A delivered point-to-point message."""

    src: tuple
    tag: Any
    payload: Any


class _Request:
    """Handle for a posted non-blocking receive."""

    __slots__ = ("trigger", "message", "done")

    def __init__(self, trigger: Trigger):
        self.trigger = trigger
        self.message: Message | None = None
        self.done = False

    def complete(self, message: Message) -> None:
        self.message = message
        self.done = True
        self.trigger.fire(message)


class _SimMailbox:
    """Per-place mailbox with (src, tag) matching, FIFO on both sides."""

    __slots__ = ("_sim", "_pending", "_waiters")

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._pending: deque[Message] = deque()
        self._waiters: deque[tuple] = deque()  # (src, tag, _Request)

    @staticmethod
    def _matches(want_src, want_tag, msg: Message) -> bool:
        if want_src is not fx.ANY_SOURCE and tuple(want_src) != msg.src:
            return False
        return want_tag is None or want_tag == msg.tag

    def deposit(self, msg: Message) -> None:
        for i, (src, tag, request) in enumerate(self._waiters):
            if self._matches(src, tag, msg):
                del self._waiters[i]
                request.complete(msg)
                return
        self._pending.append(msg)

    def post(self, src, tag) -> _Request:
        """Register a receive; completes immediately if a message waits."""
        request = _Request(self._sim.trigger())
        for i, msg in enumerate(self._pending):
            if self._matches(src, tag, msg):
                del self._pending[i]
                request.complete(msg)
                return request
        self._waiters.append((src, tag, request))
        return request

    def idle(self) -> bool:
        return not self._pending and not self._waiters


class SimPlace:
    """One logical node of the simulated cluster.

    Several logical nodes may share a physical ``host``: they then
    share its CPU and NIC resources, while node variables, events, and
    the mailbox stay per logical node (MESSENGERS semantics).
    """

    __slots__ = ("coord", "index", "host", "vars", "cpu", "nic_in",
                 "nic_out", "events", "mailbox", "_sim")

    def __init__(self, sim: Simulator, coord: tuple, index: int,
                 host: int, cpu, nic_in, nic_out):
        self.coord = coord
        self.index = index
        self.host = host
        self.vars: dict = {}
        self.cpu = cpu
        self.nic_in = nic_in
        self.nic_out = nic_out
        self.events: dict = {}
        self.mailbox = _SimMailbox(sim)
        self._sim = sim

    def event(self, name: str, args: tuple) -> Semaphore:
        key = (name, args)
        sem = self.events.get(key)
        if sem is None:
            sem = self._sim.semaphore(0, name=f"{name}{args}@{self.coord}")
            self.events[key] = sem
        return sem

    def __repr__(self) -> str:
        return f"SimPlace{self.coord}"


@dataclass
class _Ctx:
    """Runtime context bound to a messenger while it executes."""

    fabric: "SimFabric"
    place: SimPlace


@dataclass
class FabricResult:
    """Outcome of a fabric run."""

    time: float
    trace: TraceLog
    places: dict = field(default_factory=dict)

    def get(self, coord, name: str):
        """Fetch node variable ``name`` from the place at ``coord``."""
        if isinstance(coord, int):
            coord = (coord,)
        return self.places[tuple(coord)][name]


class SimFabric:
    """Discrete-event executor for messenger programs."""

    # Local (same-PE) hops are pointer swaps plus scheduler work.
    LOCAL_HOP_SECONDS = 2.0e-5

    def __init__(
        self,
        topology: Topology,
        machine: MachineSpec | None = None,
        use_cache_model: bool = True,
        trace: bool = True,
        hosts=None,
        cpu_policy: str = "fifo",
        race_check: bool = False,
        perturb_seed: int | None = None,
        faults: FaultPlan | None = None,
        recovery=True,
        checkpoint_store=None,
    ):
        self.topology = topology
        self.machine = machine if machine is not None else SUN_BLADE_100
        self.sim = Simulator(perturb_seed=perturb_seed)
        self.sim.deadlock_hint = self._deadlock_hint
        self.trace = TraceLog(enabled=trace)
        self._tracing = bool(trace)
        self._ir_roots: list = []   # (program, entry coord, env snapshot)
        self._primed: list = []     # (coord, event, args, count)
        if race_check:
            from .hb import HBTracker
            self.hb: HBTracker | None = HBTracker(
                now_fn=lambda: self.sim.now, trace=self.trace)
        else:
            self.hb = None
        host_map = resolve_hosts(topology, hosts)
        self.n_hosts = max(host_map.values()) + 1
        host_res = [
            (Resource(self.sim, 1, name=f"cpu@host{h}", policy=cpu_policy),
             self.sim.resource(1, name=f"nic_in@host{h}"),
             self.sim.resource(1, name=f"nic_out@host{h}"))
            for h in range(self.n_hosts)
        ]
        self.places = []
        for i, coord in enumerate(topology.coords):
            host = host_map[coord]
            cpu, nic_in, nic_out = host_res[host]
            self.places.append(
                SimPlace(self.sim, coord, i, host, cpu, nic_in, nic_out))
        self._by_coord = {p.coord: p for p in self.places}
        self._names: dict = {}
        self._started = False
        if use_cache_model:
            factors = compute_cache_factors(elem_size=self.machine.elem_size)
            self._cache_factors = {
                k: factors[k] for k in ("sequential", "navp", "mpi")
            }
        else:
            self._cache_factors = {}
        # Resilience: explicit plan wins; otherwise the ambient
        # resilience.injected() context (which is how fault plans reach
        # the fabrics that table builders construct internally).
        if faults is None:
            faults, ambient_recovery = ambient_faults()
            if faults is not None:
                recovery = ambient_recovery
        self._resil: _Resilience | None = None
        if (faults is not None and faults) or checkpoint_store is not None:
            self._resil = _Resilience(
                self, faults if faults is not None else FaultPlan(),
                recovery, checkpoint_store)

    # -- setup -------------------------------------------------------------
    def place(self, coord) -> SimPlace:
        coord = self.topology.normalize(coord)
        return self._by_coord[coord]

    def load(self, coord, **node_vars) -> None:
        """Install node variables at a place before the run (time 0)."""
        self.place(coord).vars.update(node_vars)

    def signal_initial(self, coord, name: str, *args, count: int = 1) -> None:
        """Pre-signal an event, like Figure 13's "EC(i,j) is signaled
        on node(i,j) for all values of i,j initially"."""
        place = self.place(coord)
        place.event(name, tuple(args)).release(count)
        self._primed.append((place.coord, name, tuple(args), count))
        if self.hb is not None:
            self.hb.prime((place.index, name, tuple(args)), count)

    def inject(self, coord, messenger, delay: float = 0.0) -> None:
        """Inject a messenger at a place at virtual time ``delay``."""
        if self._started:
            raise FabricError("cannot inject externally after run() started")
        interp = getattr(messenger, "interp", None)
        if interp is not None:
            self._ir_roots.append((interp.program,
                                   self.place(coord).coord,
                                   dict(interp.env)))
        self._start(messenger, self.place(coord), delay=delay)

    # -- execution ----------------------------------------------------------
    def run(self, until: float | None = None) -> FabricResult:
        self._started = True
        t = self.sim.run(until=until)
        return FabricResult(
            time=t,
            trace=self.trace,
            places={p.coord: p.vars for p in self.places},
        )

    @property
    def now(self) -> float:
        return self.sim.now

    # -- internals ------------------------------------------------------------
    def _unique_name(self, messenger) -> str:
        base = getattr(messenger, "name", None) or type(messenger).__name__
        count = self._names.get(base, 0)
        self._names[base] = count + 1
        return base if count == 0 else f"{base}#{count}"

    def _start(self, messenger, place: SimPlace, delay: float = 0.0,
               parent_tid: int | None = None) -> None:
        messenger._ctx = _Ctx(fabric=self, place=place)
        name = self._unique_name(messenger)
        messenger._name = name
        hb = self.hb
        if hb is not None:
            messenger._tid = hb.new_thread(parent_tid)
            interp = getattr(messenger, "interp", None)
            if interp is not None:
                from .hb import InterpTap
                interp.tracer = InterpTap(hb, messenger, interp.program)
        process = self.sim.spawn(self._driver(messenger), name=name,
                                 delay=delay)
        resil = self._resil
        if resil is not None:
            resil.procs[name] = process
            if resil.track:
                snap = self._boundary_snapshot(messenger)
                if snap is not None:
                    resil.current[name] = (place.index, snap, messenger, None)

    def _deadlock_hint(self) -> str | None:
        """Extra DeadlockError text: fault casualties first (a deadlock
        under injected faults is usually *caused* by the lost
        messengers), then what the static wait/signal protocol pass
        predicted for the injected IR programs, then the protocol
        model checker's verdict — a VERIFIED program that deadlocked
        anyway points the finger at the fabric or fault layer (lazy
        imports — the fabric stays usable without the analysis
        package)."""
        resil = self._resil
        fault_note = None
        if resil is not None and resil.lost:
            fault_note = (
                "fault injection destroyed messenger(s) with recovery "
                "disabled: " + ", ".join(resil.lost))
        if not self._ir_roots:
            return fault_note
        notes = []
        try:
            from ..analysis.protocol import protocol_diagnostics
            from ..navp import ir
        except Exception:  # pragma: no cover — analysis always ships
            return fault_note
        lines = []
        for root in dict.fromkeys(n for n, _c, _e in self._ir_roots):
            try:
                report = protocol_diagnostics(ir.get_program(root))
            except Exception:
                continue
            for diag in report:
                if diag.category in ("signal-cycle", "unmatched-wait"):
                    lines.append(f"  [{diag.category}] {diag}")
        if lines:
            notes.append(
                "static protocol analysis of the injected programs "
                "predicted:\n" + "\n".join(lines))
        try:
            from ..analysis.protocol_mc import runtime_deadlock_hint
            verdict = runtime_deadlock_hint(self._ir_roots, self._primed,
                                            window=None)
        except Exception:  # pragma: no cover — hint must never raise
            verdict = None
        if verdict:
            notes.append(verdict)
        if not notes:
            return fault_note
        return "\n".join(([fault_note] if fault_note else []) + notes)

    def _driver(self, messenger):
        gen = messenger.main()
        effects = self._EFFECTS
        resil = self._resil
        value = None
        while True:
            try:
                eff = gen.send(value)
            except StopIteration:
                if resil is not None:
                    resil.current.pop(messenger._name, None)
                return
            handler = effects.get(eff.__class__)
            if handler is None:
                handler = self._resolve_effect(eff.__class__)
                if handler is None:
                    raise FabricError(
                        f"unknown effect {eff!r} from messenger "
                        f"{messenger._name}")
            if resil is None:
                value = yield from handler(self, messenger, eff)
                continue
            # Resilient path: effect boundaries are where crashes fire,
            # where boundary snapshots are taken, and where a fault that
            # destroyed this messenger (recovery disabled) retires it.
            try:
                self._resil_boundary(messenger, eff)
                value = yield from handler(self, messenger, eff)
            except _MessengerLost as lost:
                self._on_lost(messenger, str(lost))
                return

    def _resil_boundary(self, messenger, eff) -> None:
        """Run the per-effect resilience hooks (``_resil`` is not None).

        Crashes are *polled* here rather than heap-scheduled so an
        injected crash never extends the simulation past its natural
        end (it fires at the first activity at/after its trigger) — the
        property that keeps golden virtual times bit-exact under
        masked faults.
        """
        resil = self._resil
        runtime = resil.runtime
        if runtime.pending_crashes():
            for spec, index in runtime.due_crashes(self.sim.now):
                self._fire_crash(spec, index)
        if resil.dead and messenger._ctx.place.index in resil.dead:
            raise _MessengerLost(
                f"PE {messenger._ctx.place.coord} crashed")
        if resil.track:
            snap = self._boundary_snapshot(messenger)
            if snap is not None:
                resil.current[messenger._name] = (
                    messenger._ctx.place.index, snap, messenger, eff)

    def _boundary_snapshot(self, messenger):
        """The messenger's continuation as plain data (IR only).

        Generator messengers are not snapshottable — Python cannot
        pickle a live generator frame — so cuts cover IR messengers,
        whose continuation is always explicit (the same property the
        process fabric relies on to ship hops between OS processes).
        """
        interp = getattr(messenger, "interp", None)
        if interp is None:
            return None
        program, env, stack = interp.agent_snapshot()
        return (program, dict(env), stack)

    def _on_lost(self, messenger, reason: str) -> None:
        resil = self._resil
        name = messenger._name
        resil.lost.append(name)
        resil.current.pop(name, None)
        FAULT_STATS["lost"] += 1
        if self._tracing:
            now = self.sim.now
            self.trace.record(
                t0=now, t1=now, place=messenger._ctx.place.index,
                actor=name, kind="fault", note=f"messenger lost: {reason}",
            )

    def _fire_crash(self, spec, index: int) -> None:
        """One PE fails, fail-stop, at the current virtual instant.

        With recovery enabled the crash is *masked*: the fabric
        checkpoints the place and every resident messenger's boundary
        continuation, then restores immediately — the
        instantaneous-repair model, chosen so recovered runs keep the
        exact virtual times of fault-free runs (the acceptance bar for
        the golden tables). With recovery disabled the place's node
        variables are wiped and resident/arriving messengers are
        destroyed at their next effect boundary.
        """
        resil = self._resil
        place = self.places[index]
        now = self.sim.now
        FAULT_STATS["fired"] += 1
        if resil.recovery.enabled:
            FAULT_STATS["masked"] += 1
            survivors = {}
            for name, (pindex, _snap, messenger, _eff) in (
                    resil.current.items()):
                if pindex == index:
                    snap = self._boundary_snapshot(messenger)
                    if snap is not None:
                        survivors[name] = (pindex, snap, None)
            cut = ConsistentCut(
                time=now,
                places={index: dict(place.vars)},
                events={index: {key: sem.count
                                for key, sem in place.events.items()}},
                messengers=survivors,
                label=f"crash@{place.coord}",
            )
            resil.store.save(f"crash:{now:.9f}:{index}", cut)
            if self._tracing:
                self.trace.record(
                    t0=now, t1=now, place=index, actor="fault-injector",
                    kind="checkpoint", note=cut.label)
                self.trace.record(
                    t0=now, t1=now, place=index, actor="fault-injector",
                    kind="fault", note="crash (masked)")
                self.trace.record(
                    t0=now, t1=now, place=index, actor="fault-injector",
                    kind="restore", note=cut.label)
        else:
            resil.dead.add(index)
            place.vars.clear()
            FAULT_STATS["lost"] += 1
            if self._tracing:
                self.trace.record(
                    t0=now, t1=now, place=index, actor="fault-injector",
                    kind="fault", note="crash (PE down, node vars lost)")

    def _resolve_effect(self, cls):
        """Map an effect subclass to its base handler, once, then cache."""
        for base, handler in self._EFFECT_BASES:
            if issubclass(cls, base):
                self._EFFECTS[cls] = handler
                return handler
        return None

    def _release_later(self, resource, hold: float):
        yield Timeout(hold)
        resource.release()

    # -- effect handlers ------------------------------------------------------
    def _eff_hop(self, messenger, eff):
        place = messenger._ctx.place
        sim = self.sim
        dst = self.place(eff.coord)
        t0 = sim.now
        moved = 0
        if dst.host == place.host:
            yield Timeout(self.LOCAL_HOP_SECONDS)
        else:
            net = self.machine.network
            moved = (
                eff.nbytes
                if eff.nbytes is not None
                else agent_nbytes(messenger, self.machine)
            )
            resil = self._resil
            if resil is not None:
                yield from self._hop_faults(
                    resil, messenger, place, dst, moved)
            if net.is_small(moved):
                yield Timeout(net.latency_s)
            else:
                wire = net.wire_time(moved)
                yield place.nic_out.acquire()
                sim.spawn(
                    self._release_later(place.nic_out, wire),
                    name=f"{messenger._name}.nic_out",
                )
                yield Timeout(net.latency_s)
                yield dst.nic_in.acquire()
                yield Timeout(wire)
                dst.nic_in.release()
        if self._tracing:
            self.trace.record(
                t0=t0, t1=sim.now, place=dst.index, actor=messenger._name,
                kind="hop", note=eff.coord and str(eff.coord) or "",
                src_place=place.index, nbytes=moved,
            )
        messenger._ctx.place = dst
        if self.hb is not None:
            self.hb.on_hop(messenger._tid)
        return None

    def _hop_faults(self, resil, messenger, place: SimPlace, dst: SimPlace,
                    moved: int):
        """Fault hooks for one cross-host migration (resil is not None).

        A dropped hop with recovery enabled is *retransmitted*: the
        messenger still arrives, the fault is recorded in the trace,
        and the retry charges ``retry_cost_s`` of virtual time per the
        policy — zero by default, which is what keeps golden times
        bit-exact. Without recovery the messenger is simply gone (the
        carried continuation was the only copy).
        """
        runtime = resil.runtime
        runtime.note_hop()
        now = self.sim.now
        if resil.dead and dst.index in resil.dead:
            if self._tracing:
                self.trace.record(
                    t0=now, t1=now, place=dst.index, actor=messenger._name,
                    kind="fault", note="hop into crashed PE",
                    src_place=place.index, nbytes=moved)
            raise _MessengerLost(f"hopped into crashed PE {dst.coord}")
        spec = runtime.message_action("hop", place.index, dst.index)
        if spec is None:
            return
        FAULT_STATS["fired"] += 1
        if spec.action == "delay":
            if self._tracing:
                self.trace.record(
                    t0=now, t1=now, place=dst.index, actor=messenger._name,
                    kind="fault", note=f"hop delayed {spec.seconds}s",
                    src_place=place.index)
            yield Timeout(spec.seconds)
            return
        if spec.action == "duplicate":
            # a messenger cannot be duplicated: there is exactly one
            # continuation; the dedup layer reports it masked
            FAULT_STATS["masked"] += 1
            if self._tracing:
                self.trace.record(
                    t0=now, t1=now, place=dst.index, actor=messenger._name,
                    kind="dedup", note="duplicate hop suppressed",
                    src_place=place.index)
            return
        # drop
        if not resil.recovery.enabled:
            if self._tracing:
                self.trace.record(
                    t0=now, t1=now, place=dst.index, actor=messenger._name,
                    kind="fault", note="hop dropped (no recovery)",
                    src_place=place.index, nbytes=moved)
            raise _MessengerLost("hop dropped in the network")
        FAULT_STATS["masked"] += 1
        if self._tracing:
            self.trace.record(
                t0=now, t1=now, place=dst.index, actor=messenger._name,
                kind="fault", note="hop dropped (retransmitted)",
                src_place=place.index)
            self.trace.record(
                t0=now, t1=now, place=dst.index, actor=messenger._name,
                kind="retry", note="hop retransmit",
                src_place=place.index)
        cost = resil.recovery.retry_cost_s
        if cost > 0:
            yield Timeout(cost)

    def _eff_compute(self, messenger, eff):
        place = messenger._ctx.place
        sim = self.sim
        factor = self._cache_factors.get(eff.kind, 1.0)
        cost = self.machine.flops_time(eff.flops, factor)
        if self._resil is not None:
            slow = self._resil.runtime.slow_factor(place.index, sim.now)
            if slow != 1.0:
                cost *= slow
        cpu = place.cpu
        hb = self.hb
        if cpu.in_use < cpu.capacity and not cpu._waiters:
            # uncontended: take the slot synchronously — one Timeout
            # instead of the acquire round-trip (grant event + resume).
            # No handoff edge: nothing was handed off.
            cpu.in_use += 1
            t0 = sim.now
            yield Timeout(cost)
        else:
            yield cpu.acquire()
            if hb is not None:
                hb.on_acquire(messenger._tid, cpu.name)
            t0 = sim.now
            yield Timeout(cost)
        if hb is not None:
            hb.on_release(messenger._tid, cpu.name)
        cpu.release()
        value = eff.fn() if eff.fn is not None else None
        if self._tracing:
            self.trace.record(
                t0=t0, t1=sim.now, place=place.index, actor=messenger._name,
                kind="compute", note=eff.note,
            )
        return value

    def _eff_wait_event(self, messenger, eff):
        place = messenger._ctx.place
        sim = self.sim
        sem = place.event(eff.name, tuple(eff.args))
        t0 = sim.now
        yield sem.acquire()
        if self.hb is not None:
            self.hb.on_wait(
                messenger._tid, (place.index, eff.name, tuple(eff.args)))
        if self._tracing and sim.now > t0:
            self.trace.record(
                t0=t0, t1=sim.now, place=place.index, actor=messenger._name,
                kind="wait", note=f"{eff.name}{tuple(eff.args)}",
            )
        return None

    def _eff_signal_event(self, messenger, eff):
        if self.machine.event_overhead_s > 0:
            yield Timeout(self.machine.event_overhead_s)
        place = messenger._ctx.place
        args = tuple(eff.args)
        if self.hb is not None:
            self.hb.on_signal(
                messenger._tid, (place.index, eff.name, args), eff.count)
        place.event(eff.name, args).release(eff.count)
        return None

    def _eff_inject(self, messenger, eff):
        place = messenger._ctx.place
        if self.machine.inject_overhead_s > 0:
            yield Timeout(self.machine.inject_overhead_s)
        self._start(eff.messenger, place,
                    parent_tid=(messenger._tid if self.hb is not None
                                else None))
        if self._tracing:
            self.trace.record(
                t0=self.sim.now, t1=self.sim.now, place=place.index,
                actor=messenger._name, kind="inject",
                note=type(eff.messenger).__name__,
            )
        return None

    def _eff_send(self, messenger, eff):
        place = messenger._ctx.place
        name = messenger._name
        sim = self.sim
        dst = self.place(eff.dst)
        if dst.host == place.host:
            # local delivery: pointer swap, no network involvement
            yield Timeout(self.LOCAL_HOP_SECONDS)
            dst.mailbox.deposit(Message(place.coord, eff.tag, eff.payload))
            return None
        net = self.machine.network
        nbytes = (
            eff.nbytes
            if eff.nbytes is not None
            else model_nbytes(eff.payload, self.machine) + 64
        )
        t0 = sim.now
        resil = self._resil
        if resil is not None:
            deliver = yield from self._send_faults(
                resil, messenger, place, dst, eff, nbytes)
            if not deliver:
                return None  # dropped with recovery disabled: lost
        if net.is_small(nbytes):
            delivery = self._deliver_small(place, dst, eff.tag, eff.payload)
            if resil is not None:
                delivery = self._tracked(delivery, place, dst, eff)
            sim.spawn(delivery, name=f"{name}.deliver")
        elif not eff.blocking:
            # MPI_Isend: the whole transfer (including queueing for
            # this PE's outbound NIC) runs in the background
            delivery = self._transfer(place, dst, eff.tag, eff.payload,
                                      net.wire_time(nbytes), name)
            if resil is not None:
                delivery = self._tracked(delivery, place, dst, eff)
            sim.spawn(delivery, name=f"{name}.isend")
        else:
            wire = net.wire_time(nbytes)
            yield place.nic_out.acquire()
            delivery = self._deliver(place, dst, eff.tag, eff.payload,
                                     wire, name)
            if resil is not None:
                delivery = self._tracked(delivery, place, dst, eff)
            sim.spawn(delivery, name=f"{name}.deliver")
            yield Timeout(wire)
            place.nic_out.release()
        if self._tracing:
            self.trace.record(
                t0=t0, t1=sim.now, place=dst.index, actor=name,
                kind="send", note=str(eff.tag),
                src_place=place.index, nbytes=nbytes,
            )
        return None

    def _eff_recv(self, messenger, eff):
        request = messenger._ctx.place.mailbox.post(eff.src, eff.tag)
        return (yield from self._await_request(messenger, request))

    def _eff_irecv(self, messenger, eff):
        return messenger._ctx.place.mailbox.post(eff.src, eff.tag)
        yield  # pragma: no cover — makes this a generator like its peers

    def _eff_wait_request(self, messenger, eff):
        return (yield from self._await_request(messenger, eff.request))

    def _eff_delay(self, messenger, eff):
        if eff.seconds > 0:
            yield Timeout(eff.seconds)
        return None

    # Exact effect type -> unbound handler. Populated with the concrete
    # classes; subclasses fall through to _resolve_effect once.
    _EFFECTS = {
        fx.Hop: _eff_hop,
        fx.Compute: _eff_compute,
        fx.WaitEvent: _eff_wait_event,
        fx.SignalEvent: _eff_signal_event,
        fx.Inject: _eff_inject,
        fx.Send: _eff_send,
        fx.Recv: _eff_recv,
        fx.IRecv: _eff_irecv,
        fx.WaitRequest: _eff_wait_request,
        fx.Delay: _eff_delay,
    }

    _EFFECT_BASES = tuple(_EFFECTS.items())

    def _perform(self, messenger, eff):
        """Dispatch one effect (kept as the documented seam for tests)."""
        handler = self._EFFECTS.get(eff.__class__)
        if handler is None:
            handler = self._resolve_effect(eff.__class__)
            if handler is None:
                raise FabricError(
                    f"unknown effect {eff!r} from messenger "
                    f"{messenger._name}")
        return (yield from handler(self, messenger, eff))

    def _send_faults(self, resil, messenger, place: SimPlace, dst: SimPlace,
                     eff, nbytes: int):
        """Fault hooks for one cross-host send. Returns False when the
        message is genuinely lost (drop with recovery disabled)."""
        now = self.sim.now
        name = messenger._name
        if resil.dead and dst.index in resil.dead:
            if self._tracing:
                self.trace.record(
                    t0=now, t1=now, place=dst.index, actor=name,
                    kind="fault", note="send to crashed PE",
                    src_place=place.index, nbytes=nbytes)
            FAULT_STATS["fired"] += 1
            FAULT_STATS["lost"] += 1
            return False
        spec = resil.runtime.message_action(
            "send", place.index, dst.index, eff.tag)
        if spec is None:
            return True
        FAULT_STATS["fired"] += 1
        if spec.action == "delay":
            if self._tracing:
                self.trace.record(
                    t0=now, t1=now, place=dst.index, actor=name,
                    kind="fault", note=f"send delayed {spec.seconds}s",
                    src_place=place.index)
            yield Timeout(spec.seconds)
            return True
        if spec.action == "duplicate":
            if resil.recovery.enabled:
                # the receiver's dedup layer discards the extra copy
                FAULT_STATS["masked"] += 1
                if self._tracing:
                    self.trace.record(
                        t0=now, t1=now, place=dst.index, actor=name,
                        kind="fault", note="send duplicated",
                        src_place=place.index)
                    self.trace.record(
                        t0=now, t1=now, place=dst.index, actor=name,
                        kind="dedup", note="duplicate send discarded",
                        src_place=place.index)
                return True
            # no recovery: the duplicate really arrives (after latency)
            if self._tracing:
                self.trace.record(
                    t0=now, t1=now, place=dst.index, actor=name,
                    kind="fault", note="send duplicated (delivered twice)",
                    src_place=place.index)
            extra = self._deliver_small(place, dst, eff.tag, eff.payload)
            self.sim.spawn(self._tracked(extra, place, dst, eff),
                           name=f"{name}.dup")
            return True
        # drop
        if not resil.recovery.enabled:
            FAULT_STATS["lost"] += 1
            if self._tracing:
                self.trace.record(
                    t0=now, t1=now, place=dst.index, actor=name,
                    kind="fault", note="send dropped (no recovery)",
                    src_place=place.index, nbytes=nbytes)
            return False
        FAULT_STATS["masked"] += 1
        if self._tracing:
            self.trace.record(
                t0=now, t1=now, place=dst.index, actor=name,
                kind="fault", note="send dropped (retransmitted)",
                src_place=place.index)
            self.trace.record(
                t0=now, t1=now, place=dst.index, actor=name,
                kind="retry", note="send retransmit",
                src_place=place.index)
        cost = resil.recovery.retry_cost_s
        if cost > 0:
            yield Timeout(cost)
        return True

    def _tracked(self, delivery, src: SimPlace, dst: SimPlace, eff):
        """Run a delivery generator with its payload registered as
        channel state, so a coordinated snapshot taken mid-flight
        captures it (the Chandy–Lamport channel-recording step)."""
        resil = self._resil
        resil.chan_seq += 1
        key = resil.chan_seq
        resil.channel[key] = (
            dst.index, Message(src.coord, eff.tag, eff.payload))
        try:
            yield from delivery
        finally:
            resil.channel.pop(key, None)

    # -- coordinated snapshots ------------------------------------------
    @property
    def checkpoints(self):
        """The checkpoint store (None until resilience is active)."""
        return self._resil.store if self._resil is not None else None

    def schedule_snapshot(self, at: float, label: str = "") -> None:
        """Capture a :class:`ConsistentCut` at virtual time ``at``.

        Must be called before messengers are injected when the fabric
        was built without a fault plan or checkpoint store (the drivers
        bind their resilience hooks at injection).
        """
        if self._resil is None:
            if self._names:
                raise FabricError(
                    "schedule_snapshot() must be called before inject() "
                    "on a fabric built without resilience")
            self._resil = _Resilience(self, FaultPlan(), True, None)
        self._resil.track = True
        self.sim.schedule_at(at, self._capture_cut,
                             label or f"t={at:.9f}")

    def _capture_cut(self, label: str) -> None:
        """Close a coordinated snapshot at the current virtual instant.

        Virtual time is the free global barrier the Chandy–Lamport
        protocol has to synthesize with markers on a real machine: all
        place state is read at one instant, channel state comes from
        the tracked in-flight deliveries, and each live IR messenger
        contributes the boundary continuation recorded at its current
        effect — with a pending-effect descriptor so the effect the cut
        interrupted is re-performed on restore. A messenger parked in a
        semaphore's waiter queue has consumed nothing, so recording it
        as pending-wait is consistent with the captured event counts;
        one whose wakeup is merely in flight has logically completed
        the wait and is recorded as past it.
        """
        resil = self._resil
        now = self.sim.now
        cut = ConsistentCut(time=now, label=label)
        for place in self.places:
            cut.places[place.index] = deepcopy(place.vars)
            cut.events[place.index] = {
                key: sem.count for key, sem in place.events.items()}
            cut.mailboxes[place.index] = deepcopy(
                list(place.mailbox._pending))
        cut.in_flight = deepcopy(list(resil.channel.values()))
        for mname, (pindex, snap, messenger, eff) in resil.current.items():
            pending = None
            if eff is not None:
                pending = getattr(messenger, "_last_action", None)
                if eff.__class__ is fx.WaitEvent:
                    sem = self.places[pindex].events.get(
                        (eff.name, tuple(eff.args)))
                    proc = resil.procs.get(mname)
                    if not (sem is not None and proc is not None
                            and proc in sem._waiters):
                        pending = None  # wait already (logically) done
            cut.messengers[mname] = (pindex, deepcopy(snap),
                                     deepcopy(pending))
        resil.store.save(f"cut:{now:.9f}:{label}", cut)
        if self._tracing:
            self.trace.record(
                t0=now, t1=now, place=0, actor="snapshotter",
                kind="checkpoint", note=label)

    def _resolve_place(self, spec_place):
        """Map a fault spec's place (index or coordinate) to a place
        index of *this* fabric, or None when it names no place here —
        such specs are inert, so one plan file can drive topologies of
        different sizes."""
        if isinstance(spec_place, int):
            if 0 <= spec_place < len(self.places):
                return spec_place
            return None
        try:
            coord = self.topology.normalize(tuple(spec_place))
        except Exception:
            return None
        place = self._by_coord.get(coord)
        return place.index if place is not None else None

    def _deliver(self, src: SimPlace, dst: SimPlace, tag, payload,
                 wire: float, sender: str):
        yield Timeout(self.machine.network.latency_s)
        yield dst.nic_in.acquire()
        yield Timeout(wire)
        dst.nic_in.release()
        dst.mailbox.deposit(Message(src.coord, tag, payload))

    def _deliver_small(self, src: SimPlace, dst: SimPlace, tag, payload):
        yield Timeout(self.machine.network.latency_s)
        dst.mailbox.deposit(Message(src.coord, tag, payload))

    def _transfer(self, src: SimPlace, dst: SimPlace, tag, payload,
                  wire: float, sender: str):
        """A full background transfer, pipelined like the blocking path:
        the sender NIC drains while the flight+receiver leg overlaps."""
        yield src.nic_out.acquire()
        self.sim.spawn(
            self._deliver(src, dst, tag, payload, wire, sender),
            name=f"{sender}.deliver",
        )
        yield Timeout(wire)
        src.nic_out.release()

    def _await_request(self, messenger, request: _Request):
        place = messenger._ctx.place
        if request.done:
            return request.message
        t0 = self.sim.now
        value = yield request.trigger
        if self._tracing:
            self.trace.record(
                t0=t0, t1=self.sim.now, place=place.index,
                actor=messenger._name, kind="recv",
            )
        return value
