"""Fabric construction by name.

Runners accept ``fabric="sim"`` (virtual time, the default — regenerates
the paper's tables), ``fabric="thread"`` (real daemon threads, wall
clock, pickled hops), ``fabric="process"`` (PEs as OS processes,
continuations pickled across address spaces on every hop), or
``fabric="socket"`` (worker processes behind a real TCP transport with
heartbeat failure detection and credit-based flow control).

Dispatch is a registry dict, so adding a fabric kind is one entry. The
process and socket fabrics run IR messengers only — a plain generator
messenger's state lives in an unpicklable generator frame — and both
inherit that capability check from their shared base: injecting a
generator messenger raises a clear
:class:`~repro.errors.ConfigurationError` (see
:meth:`repro.fabric.controller.ControllerFabric.inject`).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..machine.spec import MachineSpec
from .process import ProcessFabric
from .sim import SimFabric
from .socket import SocketFabric
from .threads import ThreadFabric
from .topology import Topology

__all__ = ["make_fabric", "fabric_capabilities", "FABRIC_KINDS",
           "FABRIC_REGISTRY", "FABRIC_CAPABILITIES"]

FABRIC_REGISTRY = {
    "sim": SimFabric,
    "thread": ThreadFabric,
    "process": ProcessFabric,
    "socket": SocketFabric,
}

FABRIC_KINDS = tuple(FABRIC_REGISTRY)

# What each kind can actually do, so callers (the serve daemon's
# admission control, ``repro run``) can validate a request up front
# instead of failing mid-run:
#
# ``ir-inject``         accepts navigational-IR messengers
# ``generator-inject``  accepts plain generator messengers (whose state
#                       cannot leave the address space)
# ``fault-injection``   honours a declarative FaultPlan
# ``checkpoint``        supports coordinated checkpoints and restore
#                       (``checkpoint_every=`` on the distributed kinds)
# ``respawn``           survives a worker SIGKILL by respawn + replay
# ``real-transport``    bytes travel over real sockets (wire.py frames)
# ``serve-pool``        workers can outlive one run, so a long-lived
#                       job service can keep them warm (repro serve)
FABRIC_CAPABILITIES = {
    "sim": frozenset({"ir-inject", "generator-inject", "fault-injection",
                      "checkpoint"}),
    "thread": frozenset({"ir-inject", "generator-inject",
                         "fault-injection"}),
    "process": frozenset({"ir-inject", "fault-injection", "checkpoint",
                          "respawn"}),
    "socket": frozenset({"ir-inject", "fault-injection", "checkpoint",
                         "respawn", "real-transport", "serve-pool"}),
}
assert set(FABRIC_CAPABILITIES) == set(FABRIC_REGISTRY)


def fabric_capabilities(kind: str) -> frozenset:
    """Capability set of a fabric kind (see the table above).

    Raises :class:`~repro.errors.ConfigurationError` for unknown kinds,
    like :func:`make_fabric`.
    """
    caps = FABRIC_CAPABILITIES.get(kind)
    if caps is None:
        raise ConfigurationError(
            f"unknown fabric kind {kind!r}; expected one of {FABRIC_KINDS}"
        )
    return caps


def make_fabric(
    kind: str,
    topology: Topology,
    machine: MachineSpec | None = None,
    trace: bool = True,
    **kwargs,
):
    """Build a fabric of the given kind over a topology.

    Extra keyword arguments pass through to the fabric constructor
    (e.g. ``faults=`` / ``checkpoint_every=`` on the distributed
    fabrics, ``window=`` on the socket fabric).
    """
    cls = FABRIC_REGISTRY.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown fabric kind {kind!r}; expected one of {FABRIC_KINDS}"
        )
    return cls(topology, machine=machine, trace=trace, **kwargs)
