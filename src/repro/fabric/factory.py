"""Fabric construction by name.

Runners accept ``fabric="sim"`` (virtual time, the default — regenerates
the paper's tables) or ``fabric="thread"`` (real daemon threads, wall
clock, pickled hops). The process fabric is not built here: it runs IR
messengers only and has its own driver in
:mod:`repro.fabric.process`.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..machine.spec import MachineSpec
from .sim import SimFabric
from .threads import ThreadFabric
from .topology import Topology

__all__ = ["make_fabric", "FABRIC_KINDS"]

FABRIC_KINDS = ("sim", "thread")


def make_fabric(
    kind: str,
    topology: Topology,
    machine: MachineSpec | None = None,
    trace: bool = True,
):
    """Build a fabric of the given kind over a topology."""
    if kind == "sim":
        return SimFabric(topology, machine=machine, trace=trace)
    if kind == "thread":
        return ThreadFabric(topology, machine=machine, trace=trace)
    raise ConfigurationError(
        f"unknown fabric kind {kind!r}; expected one of {FABRIC_KINDS}"
    )
