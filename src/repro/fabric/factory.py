"""Fabric construction by name.

Runners accept ``fabric="sim"`` (virtual time, the default — regenerates
the paper's tables), ``fabric="thread"`` (real daemon threads, wall
clock, pickled hops), ``fabric="process"`` (PEs as OS processes,
continuations pickled across address spaces on every hop), or
``fabric="socket"`` (worker processes behind a real TCP transport with
heartbeat failure detection and credit-based flow control).

Dispatch is a registry dict, so adding a fabric kind is one entry. The
process and socket fabrics run IR messengers only — a plain generator
messenger's state lives in an unpicklable generator frame — and both
inherit that capability check from their shared base: injecting a
generator messenger raises a clear
:class:`~repro.errors.ConfigurationError` (see
:meth:`repro.fabric.controller.ControllerFabric.inject`).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..machine.spec import MachineSpec
from .process import ProcessFabric
from .sim import SimFabric
from .socket import SocketFabric
from .threads import ThreadFabric
from .topology import Topology

__all__ = ["make_fabric", "FABRIC_KINDS", "FABRIC_REGISTRY"]

FABRIC_REGISTRY = {
    "sim": SimFabric,
    "thread": ThreadFabric,
    "process": ProcessFabric,
    "socket": SocketFabric,
}

FABRIC_KINDS = tuple(FABRIC_REGISTRY)


def make_fabric(
    kind: str,
    topology: Topology,
    machine: MachineSpec | None = None,
    trace: bool = True,
    **kwargs,
):
    """Build a fabric of the given kind over a topology.

    Extra keyword arguments pass through to the fabric constructor
    (e.g. ``faults=`` / ``checkpoint_every=`` on the distributed
    fabrics, ``window=`` on the socket fabric).
    """
    cls = FABRIC_REGISTRY.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown fabric kind {kind!r}; expected one of {FABRIC_KINDS}"
        )
    return cls(topology, machine=machine, trace=trace, **kwargs)
