"""Fabric construction by name.

Runners accept ``fabric="sim"`` (virtual time, the default — regenerates
the paper's tables), ``fabric="thread"`` (real daemon threads, wall
clock, pickled hops), or ``fabric="process"`` (PEs as OS processes,
continuations pickled across address spaces on every hop).

The process fabric runs IR messengers only — a plain generator
messenger's state lives in an unpicklable generator frame — so
:func:`make_fabric` builds it with that capability check wired in:
injecting a generator messenger raises a clear
:class:`~repro.errors.ConfigurationError` (see
:meth:`repro.fabric.process.ProcessFabric.inject`).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..machine.spec import MachineSpec
from .process import ProcessFabric
from .sim import SimFabric
from .threads import ThreadFabric
from .topology import Topology

__all__ = ["make_fabric", "FABRIC_KINDS"]

FABRIC_KINDS = ("sim", "thread", "process")


def make_fabric(
    kind: str,
    topology: Topology,
    machine: MachineSpec | None = None,
    trace: bool = True,
):
    """Build a fabric of the given kind over a topology."""
    if kind == "sim":
        return SimFabric(topology, machine=machine, trace=trace)
    if kind == "thread":
        return ThreadFabric(topology, machine=machine, trace=trace)
    if kind == "process":
        return ProcessFabric(topology, machine=machine, trace=trace)
    raise ConfigurationError(
        f"unknown fabric kind {kind!r}; expected one of {FABRIC_KINDS}"
    )
