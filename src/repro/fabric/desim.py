"""A small deterministic discrete-event simulation kernel.

This is the substrate under :class:`repro.fabric.sim.SimFabric`. It is
a deliberately minimal coroutine-based DES (in the style of SimPy):

* :class:`Simulator` — virtual clock plus a binary-heap event queue;
  ties are broken by a monotonically increasing sequence number, so
  simulations are fully deterministic.
* :class:`SimProcess` — drives a Python generator; the generator
  *yields* waitables and is resumed when they complete.
* Waitables: :class:`Timeout`, ``Resource.acquire()`` (FIFO resource
  with integral capacity — models CPUs and NICs), ``Semaphore.acquire()``
  (counting semaphore — models NavP events), :class:`Trigger` (one-shot
  broadcast event carrying a value), and another :class:`SimProcess`
  (join).

Exceptions raised inside a process abort the simulation and re-raise
from :meth:`Simulator.run` with the process name attached. If the event
queue drains while processes are still blocked, :meth:`Simulator.run`
raises :class:`repro.errors.DeadlockError` naming every blocked process
and what it is waiting on — invaluable when debugging event protocols
like the EP/EC handshake of Figures 13/15.

Fast-path design (the engine carries millions of events per table):

* Every hot class uses ``__slots__``.
* Zero-delay wakeups — resource grants, semaphore releases, trigger
  broadcasts — bypass the heap entirely. They go onto a FIFO side
  deque and are merged back by sequence number, so the executed order
  is *bit-identical* to the all-heap schedule while the dominant event
  class costs O(1) instead of O(log n).
* Yield dispatch is a type-keyed table with the :class:`Timeout` case
  inlined (subclasses of the waitables still resolve, once, through an
  ``isinstance`` fallback that caches its answer).

The module-level :data:`PERF_STATS` counter accumulates executed events
across simulators; ``repro bench`` reads it to compute events/sec for
whole table sweeps.

Schedule perturbation (the race-detection fuzzer's hook): the merge of
the immediate deque and the heap is the *one* place the executed order
of same-timestamp events is decided, so a seeded shuffle of exactly
that decision explores every schedule the DES could legally produce
without touching virtual time. ``Simulator(perturb_seed=n)`` — or the
:func:`perturbed` context manager, which reaches simulators constructed
deep inside table builders — pools every ready event at the current
timestamp and picks the next one with a private ``random.Random``.
Timestamps, and therefore every model *time*, are unaffected; only the
tie-break order moves. With no seed the original bit-exact merge loop
runs unchanged.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Callable, Generator
from contextlib import contextmanager
from heapq import heappop, heappush
from itertools import islice

from ..errors import DeadlockError, SimulationError

__all__ = [
    "Simulator",
    "SimProcess",
    "Timeout",
    "Resource",
    "Semaphore",
    "Trigger",
    "PERF_STATS",
    "perturbed",
]

# Executed-event tally across all Simulator instances (benchmarking aid;
# reset it yourself around a measured region).
PERF_STATS = {"events": 0}

# Ambient perturbation state consulted by Simulator.__init__ when no
# explicit perturb_seed is given. "count" makes each simulator built
# under one perturbed() context draw a distinct-but-reproducible stream.
_PERTURB: dict = {"seed": None, "count": 0}


@contextmanager
def perturbed(seed: int):
    """Make every Simulator built in this context shuffle same-time ties.

    The n-th simulator constructed inside the context seeds its private
    RNG from ``(seed, n)``, so a whole table sweep (which builds many
    simulators internally) is reproducible from the single seed.
    """
    prior = (_PERTURB["seed"], _PERTURB["count"])
    _PERTURB["seed"] = seed
    _PERTURB["count"] = 0
    try:
        yield
    finally:
        _PERTURB["seed"], _PERTURB["count"] = prior


class Timeout:
    """Wait for a fixed amount of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay

    def __repr__(self) -> str:
        return f"Timeout({self.delay!r})"


class _Acquire:
    """Internal waitable returned by Resource/Semaphore ``acquire()``."""

    __slots__ = ("target",)

    def __init__(self, target):
        self.target = target

    def __repr__(self) -> str:
        return f"Acquire({self.target!r})"


class Resource:
    """A resource with integral capacity (CPU, NIC, ...).

    ``policy`` selects which waiter is served when a slot frees:
    ``"fifo"`` (the default — the MESSENGERS daemon's ready queue) or
    ``"lifo"``. Usage inside a process generator::

        yield cpu.acquire()
        yield Timeout(work_seconds)
        cpu.release()
    """

    POLICIES = ("fifo", "lifo")

    __slots__ = ("sim", "capacity", "name", "policy", "in_use", "_waiters",
                 "_token")

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "",
                 policy: str = "fifo"):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        if policy not in self.POLICIES:
            raise SimulationError(f"unknown resource policy {policy!r}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or f"resource@{id(self):x}"
        self.policy = policy
        self.in_use = 0
        self._waiters: deque = deque()
        self._token = _Acquire(self)  # immutable, shared by every acquire

    def acquire(self) -> _Acquire:
        return self._token

    def _request(self, process: "SimProcess") -> None:
        if self.in_use < self.capacity:
            self.in_use += 1
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            sim._immediate.append((seq, process._wake, None))
        else:
            self._waiters.append(process)

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name}")
        if self._waiters:
            process = (self._waiters.popleft() if self.policy == "fifo"
                       else self._waiters.pop())
            # capacity slot transfers directly to the next waiter
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            sim._immediate.append((seq, process._wake, None))
        else:
            self.in_use -= 1

    def waiting(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:
        return (f"Resource({self.name}, {self.in_use}/{self.capacity} used, "
                f"{len(self._waiters)} waiting)")


class Semaphore:
    """A counting semaphore — the model for NavP events.

    ``signalEvent`` is :meth:`release`; ``waitEvent`` is
    ``yield sem.acquire()``. Counting (rather than sticky) semantics
    are required by the paper's producer/consumer handshake: each
    ``EP``/``EC`` signal enables exactly one waiter.
    """

    __slots__ = ("sim", "count", "name", "_waiters", "_token")

    def __init__(self, sim: "Simulator", initial: int = 0, name: str = ""):
        if initial < 0:
            raise SimulationError("semaphore count must be >= 0")
        self.sim = sim
        self.count = initial
        self.name = name or f"semaphore@{id(self):x}"
        self._waiters: deque = deque()
        self._token = _Acquire(self)

    def acquire(self) -> _Acquire:
        return self._token

    def _request(self, process: "SimProcess") -> None:
        if self.count > 0:
            self.count -= 1
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            sim._immediate.append((seq, process._wake, None))
        else:
            self._waiters.append(process)

    def release(self, n: int = 1) -> None:
        if n < 1:
            raise SimulationError("semaphore release count must be >= 1")
        for _ in range(n):
            if self._waiters:
                process = self._waiters.popleft()
                sim = self.sim
                sim._seq = seq = sim._seq + 1
                sim._immediate.append((seq, process._wake, None))
            else:
                self.count += 1

    def waiting(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:
        return (f"Semaphore({self.name}, count={self.count}, "
                f"{len(self._waiters)} waiting)")


class Trigger:
    """A one-shot broadcast event carrying an optional value."""

    __slots__ = ("sim", "name", "fired", "value", "_waiters")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name or f"trigger@{id(self):x}"
        self.fired = False
        self.value = None
        self._waiters: list = []

    def fire(self, value=None) -> None:
        if self.fired:
            raise SimulationError(f"trigger {self.name} fired twice")
        self.fired = True
        self.value = value
        sim = self.sim
        immediate = sim._immediate
        for process in self._waiters:
            sim._seq = seq = sim._seq + 1
            immediate.append((seq, process._wake, value))
        self._waiters.clear()

    def _request(self, process: "SimProcess") -> None:
        if self.fired:
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            sim._immediate.append((seq, process._wake, self.value))
        else:
            self._waiters.append(process)

    def __repr__(self) -> str:
        state = "fired" if self.fired else f"{len(self._waiters)} waiting"
        return f"Trigger({self.name}, {state})"


class SimProcess:
    """A generator-driven simulation process."""

    __slots__ = ("sim", "gen", "name", "result", "waiting_on", "alive",
                 "_done", "_wake", "_send")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or f"process@{id(self):x}"
        self.result = None
        self.waiting_on = None
        self.alive = True
        self._done: Trigger | None = None  # created on first join
        self._wake = self._resume  # pre-bound: every event stores this
        self._send = gen.send

    @property
    def done(self) -> Trigger:
        """Completion trigger (lazily created; fires with the result)."""
        trigger = self._done
        if trigger is None:
            trigger = Trigger(self.sim, name=f"{self.name}.done")
            if not self.alive:
                trigger.fired = True
                trigger.value = self.result
            self._done = trigger
        return trigger

    def _finish(self, result) -> None:
        self.alive = False
        self.sim._alive -= 1
        self.result = result
        if self._done is not None:
            self._done.fire(result)

    def _resume(self, value) -> None:
        self.waiting_on = None
        try:
            item = self._send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Exception as exc:
            self.alive = False
            self.sim._alive -= 1
            self.sim._fail(self, exc)
            return
        self.waiting_on = item
        cls = item.__class__
        if cls is Timeout:  # the single hottest yield, scheduled inline
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            delay = item.delay  # Timeout.__init__ guarantees delay >= 0
            if delay == 0.0:
                sim._immediate.append((seq, self._wake, None))
            else:
                heappush(sim._queue, (sim.now + delay, seq, self._wake, None))
        elif cls is _Acquire:
            item.target._request(self)
        else:
            self._dispatch(item)

    def _dispatch(self, item) -> None:
        handler = _DISPATCH.get(item.__class__)
        if handler is None:
            handler = _resolve_dispatch(item.__class__)
        if handler is None:
            self.alive = False
            self.sim._alive -= 1
            exc = SimulationError(
                f"process {self.name} yielded unsupported item {item!r}"
            )
            self.sim._fail(self, exc)
            return
        handler(self, item)

    def __repr__(self) -> str:
        state = f"waiting on {self.waiting_on!r}" if self.alive else "done"
        return f"SimProcess({self.name}, {state})"


def _wait_timeout(process: SimProcess, item: Timeout) -> None:
    process.sim._schedule(item.delay, process._resume, None)


def _wait_acquire(process: SimProcess, item: _Acquire) -> None:
    item.target._request(process)


def _wait_trigger(process: SimProcess, item: Trigger) -> None:
    item._request(process)


def _wait_process(process: SimProcess, item: SimProcess) -> None:
    item.done._request(process)


# Type-keyed yield dispatch. Exact types hit the dict; subclasses of a
# waitable resolve once through _resolve_dispatch and are then cached.
_DISPATCH: dict = {
    Timeout: _wait_timeout,
    _Acquire: _wait_acquire,
    Trigger: _wait_trigger,
    SimProcess: _wait_process,
}

_DISPATCH_BASES = (
    (Timeout, _wait_timeout),
    (_Acquire, _wait_acquire),
    (Trigger, _wait_trigger),
    (SimProcess, _wait_process),
)


def _resolve_dispatch(cls):
    for base, handler in _DISPATCH_BASES:
        if issubclass(cls, base):
            _DISPATCH[cls] = handler
            return handler
    return None


class Simulator:
    """Virtual clock plus deterministic event queue."""

    __slots__ = ("now", "_queue", "_immediate", "_seq", "_processes",
                 "_failure", "_alive", "events_executed", "_rng",
                 "deadlock_hint")

    def __init__(self, perturb_seed: int | None = None):
        self.now = 0.0
        self._queue: list = []
        self._immediate: deque = deque()  # zero-delay events, FIFO by seq
        self._seq = 0
        self._processes: list[SimProcess] = []
        self._failure: tuple | None = None
        self._alive = 0
        self.events_executed = 0
        # Callable returning extra text for DeadlockError (or None);
        # SimFabric points this at the static protocol analyzer so a
        # deadlock names the wait/signal cycle that predicted it.
        self.deadlock_hint: Callable | None = None
        if perturb_seed is None and _PERTURB["seed"] is not None:
            n = _PERTURB["count"]
            _PERTURB["count"] = n + 1
            perturb_seed = _PERTURB["seed"] * 1_000_003 + n
        self._rng = (None if perturb_seed is None
                     else random.Random(perturb_seed))

    # -- low-level scheduling -------------------------------------------
    def _schedule(self, delay: float, fn: Callable, arg) -> None:
        seq = self._seq + 1
        self._seq = seq
        if delay == 0.0:
            self._immediate.append((seq, fn, arg))
        elif delay > 0.0:
            heappush(self._queue, (self.now + delay, seq, fn, arg))
        else:
            raise SimulationError(f"cannot schedule in the past ({delay})")

    def _fail(self, process: SimProcess, exc: Exception) -> None:
        if self._failure is None:
            self._failure = (process, exc)

    def schedule_at(self, time: float, fn: Callable, arg=None) -> None:
        """Schedule a plain callback at absolute virtual time ``time``.

        The public face of :meth:`_schedule` for callers that think in
        absolute simulation time — fault injection and coordinated
        checkpoints are scheduled this way. Ties at ``time`` are broken
        by the global sequence number like every other event, so
        injected callbacks keep the simulation deterministic.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at past time {time} (now={self.now})")
        self._schedule(time - self.now, fn, arg)

    # -- public API -------------------------------------------------------
    def resource(self, capacity: int = 1, name: str = "") -> Resource:
        return Resource(self, capacity, name)

    def semaphore(self, initial: int = 0, name: str = "") -> Semaphore:
        return Semaphore(self, initial, name)

    def trigger(self, name: str = "") -> Trigger:
        return Trigger(self, name)

    def spawn(self, gen: Generator, name: str = "",
              delay: float = 0.0) -> SimProcess:
        """Add a process; it takes its first step at ``now + delay``."""
        process = SimProcess(self, gen, name)
        self._processes.append(process)
        self._alive += 1
        self._schedule(delay, process._wake, None)
        return process

    def run(self, until: float | None = None) -> float:
        """Run until the queue drains (or virtual time ``until``).

        Returns the final virtual time. Raises the first process
        exception, or :class:`DeadlockError` if blocked processes
        remain when the queue empties.

        The merge rule below replays the exact (time, seq) order a pure
        heap would produce: an immediate event carries the timestamp it
        was scheduled at (always the current clock), so the only
        candidate that may precede the immediate front is a heap event
        at the same timestamp with a smaller sequence number.
        """
        if self._rng is not None:
            return self._run_perturbed(until)
        queue = self._queue
        immediate = self._immediate
        pop = heappop
        executed = 0
        try:
            while self._failure is None:
                if immediate:
                    if (queue and queue[0][0] == self.now
                            and queue[0][1] < immediate[0][0]):
                        _time, _seq, fn, arg = pop(queue)
                    else:
                        _seq, fn, arg = immediate.popleft()
                elif queue:
                    time = queue[0][0]
                    if until is not None and time > until:
                        self.now = until
                        return self.now
                    if time < self.now:
                        raise SimulationError(
                            "event queue time went backwards")
                    _time, _seq, fn, arg = pop(queue)
                    self.now = time
                else:
                    break
                fn(arg)
                executed += 1
        finally:
            self.events_executed += executed
            PERF_STATS["events"] += executed
        return self._epilogue(until)

    def _run_perturbed(self, until: float | None) -> float:
        """The fuzzing twin of :meth:`run`.

        All events ready at the current timestamp — the whole immediate
        deque plus every heap entry whose time equals ``now`` — form a
        pool, and the seeded RNG picks which runs next. Each executed
        event may append new zero-delay work, which joins the pool on
        the next iteration, so the shuffle covers cascades too. The
        clock only advances when the pool is empty.
        """
        queue = self._queue
        immediate = self._immediate
        rng = self._rng
        pool: list = []
        executed = 0
        try:
            while self._failure is None:
                while immediate:
                    pool.append(immediate.popleft())
                while queue and queue[0][0] == self.now:
                    _time, seq, fn, arg = heappop(queue)
                    pool.append((seq, fn, arg))
                if not pool:
                    if not queue:
                        break
                    time = queue[0][0]
                    if until is not None and time > until:
                        self.now = until
                        return self.now
                    if time < self.now:
                        raise SimulationError(
                            "event queue time went backwards")
                    self.now = time
                    continue
                i = rng.randrange(len(pool))
                entry = pool[i]
                pool[i] = pool[-1]
                del pool[-1]
                _seq, fn, arg = entry
                fn(arg)
                executed += 1
        finally:
            self.events_executed += executed
            PERF_STATS["events"] += executed
        return self._epilogue(until)

    def _epilogue(self, until: float | None) -> float:
        if self._failure is not None:
            process, exc = self._failure
            raise SimulationError(
                f"process {process.name!r} raised {type(exc).__name__}: {exc}"
            ) from exc
        if self._alive and until is None:
            blocked = list(islice(
                (p for p in self._processes if p.alive), 21))
            detail = "; ".join(
                f"{p.name} waiting on {p.waiting_on!r}" for p in blocked[:20]
            )
            more = ("" if self._alive <= 20
                    else f" (+{self._alive - 20} more)")
            message = (
                f"{self._alive} process(es) blocked with no pending events: "
                f"{detail}{more}"
            )
            hint = self.deadlock_hint
            if hint is not None:
                try:
                    extra = hint()
                except Exception:
                    extra = None
                if extra:
                    message = f"{message}\n{extra}"
            raise DeadlockError(message)
        return self.now

    def alive_count(self) -> int:
        """Processes still alive — O(1), maintained by spawn/finish."""
        return self._alive
