"""A small deterministic discrete-event simulation kernel.

This is the substrate under :class:`repro.fabric.sim.SimFabric`. It is
a deliberately minimal coroutine-based DES (in the style of SimPy):

* :class:`Simulator` — virtual clock plus a binary-heap event queue;
  ties are broken by a monotonically increasing sequence number, so
  simulations are fully deterministic.
* :class:`SimProcess` — drives a Python generator; the generator
  *yields* waitables and is resumed when they complete.
* Waitables: :class:`Timeout`, ``Resource.acquire()`` (FIFO resource
  with integral capacity — models CPUs and NICs), ``Semaphore.acquire()``
  (counting semaphore — models NavP events), :class:`Trigger` (one-shot
  broadcast event carrying a value), and another :class:`SimProcess`
  (join).

Exceptions raised inside a process abort the simulation and re-raise
from :meth:`Simulator.run` with the process name attached. If the event
queue drains while processes are still blocked, :meth:`Simulator.run`
raises :class:`repro.errors.DeadlockError` naming every blocked process
and what it is waiting on — invaluable when debugging event protocols
like the EP/EC handshake of Figures 13/15.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable, Generator

from ..errors import DeadlockError, SimulationError

__all__ = [
    "Simulator",
    "SimProcess",
    "Timeout",
    "Resource",
    "Semaphore",
    "Trigger",
]


class Timeout:
    """Wait for a fixed amount of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay

    def __repr__(self) -> str:
        return f"Timeout({self.delay!r})"


class _Acquire:
    """Internal waitable returned by Resource/Semaphore ``acquire()``."""

    __slots__ = ("target",)

    def __init__(self, target):
        self.target = target

    def __repr__(self) -> str:
        return f"Acquire({self.target!r})"


class Resource:
    """A resource with integral capacity (CPU, NIC, ...).

    ``policy`` selects which waiter is served when a slot frees:
    ``"fifo"`` (the default — the MESSENGERS daemon's ready queue) or
    ``"lifo"``. Usage inside a process generator::

        yield cpu.acquire()
        yield Timeout(work_seconds)
        cpu.release()
    """

    POLICIES = ("fifo", "lifo")

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "",
                 policy: str = "fifo"):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        if policy not in self.POLICIES:
            raise SimulationError(f"unknown resource policy {policy!r}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or f"resource@{id(self):x}"
        self.policy = policy
        self.in_use = 0
        self._waiters: deque = deque()

    def acquire(self) -> _Acquire:
        return _Acquire(self)

    def _request(self, process: "SimProcess") -> None:
        if self.in_use < self.capacity:
            self.in_use += 1
            self.sim._schedule(0.0, process._resume, None)
        else:
            self._waiters.append(process)

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name}")
        if self._waiters:
            process = (self._waiters.popleft() if self.policy == "fifo"
                       else self._waiters.pop())
            # capacity slot transfers directly to the next waiter
            self.sim._schedule(0.0, process._resume, None)
        else:
            self.in_use -= 1

    def waiting(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:
        return (f"Resource({self.name}, {self.in_use}/{self.capacity} used, "
                f"{len(self._waiters)} waiting)")


class Semaphore:
    """A counting semaphore — the model for NavP events.

    ``signalEvent`` is :meth:`release`; ``waitEvent`` is
    ``yield sem.acquire()``. Counting (rather than sticky) semantics
    are required by the paper's producer/consumer handshake: each
    ``EP``/``EC`` signal enables exactly one waiter.
    """

    def __init__(self, sim: "Simulator", initial: int = 0, name: str = ""):
        if initial < 0:
            raise SimulationError("semaphore count must be >= 0")
        self.sim = sim
        self.count = initial
        self.name = name or f"semaphore@{id(self):x}"
        self._waiters: deque = deque()

    def acquire(self) -> _Acquire:
        return _Acquire(self)

    def _request(self, process: "SimProcess") -> None:
        if self.count > 0:
            self.count -= 1
            self.sim._schedule(0.0, process._resume, None)
        else:
            self._waiters.append(process)

    def release(self, n: int = 1) -> None:
        if n < 1:
            raise SimulationError("semaphore release count must be >= 1")
        for _ in range(n):
            if self._waiters:
                process = self._waiters.popleft()
                self.sim._schedule(0.0, process._resume, None)
            else:
                self.count += 1

    def waiting(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:
        return (f"Semaphore({self.name}, count={self.count}, "
                f"{len(self._waiters)} waiting)")


class Trigger:
    """A one-shot broadcast event carrying an optional value."""

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name or f"trigger@{id(self):x}"
        self.fired = False
        self.value = None
        self._waiters: list = []

    def fire(self, value=None) -> None:
        if self.fired:
            raise SimulationError(f"trigger {self.name} fired twice")
        self.fired = True
        self.value = value
        for process in self._waiters:
            self.sim._schedule(0.0, process._resume, value)
        self._waiters.clear()

    def _request(self, process: "SimProcess") -> None:
        if self.fired:
            self.sim._schedule(0.0, process._resume, self.value)
        else:
            self._waiters.append(process)

    def __repr__(self) -> str:
        state = "fired" if self.fired else f"{len(self._waiters)} waiting"
        return f"Trigger({self.name}, {state})"


class SimProcess:
    """A generator-driven simulation process."""

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or f"process@{id(self):x}"
        self.done = Trigger(sim, name=f"{self.name}.done")
        self.result = None
        self.waiting_on = None
        self.alive = True

    def _resume(self, value) -> None:
        self.waiting_on = None
        try:
            item = self.gen.send(value)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            self.done.fire(stop.value)
            return
        except Exception as exc:
            self.alive = False
            self.sim._fail(self, exc)
            return
        self._dispatch(item)

    def _dispatch(self, item) -> None:
        self.waiting_on = item
        if isinstance(item, Timeout):
            self.sim._schedule(item.delay, self._resume, None)
        elif isinstance(item, _Acquire):
            item.target._request(self)
        elif isinstance(item, Trigger):
            item._request(self)
        elif isinstance(item, SimProcess):
            item.done._request(self)
        else:
            self.alive = False
            exc = SimulationError(
                f"process {self.name} yielded unsupported item {item!r}"
            )
            self.sim._fail(self, exc)

    def __repr__(self) -> str:
        state = f"waiting on {self.waiting_on!r}" if self.alive else "done"
        return f"SimProcess({self.name}, {state})"


class Simulator:
    """Virtual clock plus deterministic event queue."""

    def __init__(self):
        self.now = 0.0
        self._queue: list = []
        self._seq = 0
        self._processes: list[SimProcess] = []
        self._failure: tuple | None = None

    # -- low-level scheduling -------------------------------------------
    def _schedule(self, delay: float, fn: Callable, arg) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past ({delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, fn, arg))

    def _fail(self, process: SimProcess, exc: Exception) -> None:
        if self._failure is None:
            self._failure = (process, exc)

    # -- public API -------------------------------------------------------
    def resource(self, capacity: int = 1, name: str = "") -> Resource:
        return Resource(self, capacity, name)

    def semaphore(self, initial: int = 0, name: str = "") -> Semaphore:
        return Semaphore(self, initial, name)

    def trigger(self, name: str = "") -> Trigger:
        return Trigger(self, name)

    def spawn(self, gen: Generator, name: str = "",
              delay: float = 0.0) -> SimProcess:
        """Add a process; it takes its first step at ``now + delay``."""
        process = SimProcess(self, gen, name)
        self._processes.append(process)
        self._schedule(delay, process._resume, None)
        return process

    def run(self, until: float | None = None) -> float:
        """Run until the queue drains (or virtual time ``until``).

        Returns the final virtual time. Raises the first process
        exception, or :class:`DeadlockError` if blocked processes
        remain when the queue empties.
        """
        while self._queue:
            if self._failure is not None:
                break
            time, _seq, fn, arg = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            if time < self.now:
                raise SimulationError("event queue time went backwards")
            self.now = time
            fn(arg)
        if self._failure is not None:
            process, exc = self._failure
            raise SimulationError(
                f"process {process.name!r} raised {type(exc).__name__}: {exc}"
            ) from exc
        blocked = [p for p in self._processes if p.alive]
        if blocked and until is None:
            detail = "; ".join(
                f"{p.name} waiting on {p.waiting_on!r}" for p in blocked[:20]
            )
            more = "" if len(blocked) <= 20 else f" (+{len(blocked) - 20} more)"
            raise DeadlockError(
                f"{len(blocked)} process(es) blocked with no pending events: "
                f"{detail}{more}"
            )
        return self.now

    def alive_count(self) -> int:
        return sum(1 for p in self._processes if p.alive)
