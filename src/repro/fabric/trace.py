"""Execution traces: who did what, where, when.

Traces power the reproduction of the paper's Figure 1 (the space-time
diagrams of the sequential → DSC → pipelined → phase-shifted stages)
via :mod:`repro.viz.spacetime`, and give tests a way to assert
scheduling properties (e.g. "under phase shifting every PE computes
from virtual time ~0").
"""

from __future__ import annotations

from dataclasses import dataclass
from collections import defaultdict

__all__ = ["TraceEvent", "TraceLog"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One interval of activity.

    ``kind`` is one of ``"compute"``, ``"hop"``, ``"send"``, ``"recv"``,
    ``"wait"``, ``"inject"`` — plus, when the fabric runs with
    ``race_check=True``, zero-duration ``"access"`` events (one per
    node-variable read/write, ``note`` like ``"W C[(0, 1)]"``) and
    ``"race"`` events (an unordered conflicting pair the happens-before
    checker flagged; ``note`` carries both access sites). Fabrics
    running under a fault plan additionally record zero-duration
    ``"fault"`` (an injected fault fired; ``nbytes`` carries the
    payload only when it was genuinely lost), ``"retry"`` / ``"dedup"``
    (recovery masked a drop / discarded a duplicate), ``"checkpoint"``
    / ``"restore"`` (snapshot protocol), and ``"respawn"`` (process
    fabric worker replacement) events. The socket fabric adds
    zero-duration ``"transport"`` events — one per worker at collect
    time, ``note`` a space-separated ``key=value`` summary of its wire
    counters (``inbox_hwm``, ``window``, ``frames_in`` …) — queried via
    :meth:`TraceLog.mailbox_hwm` and friends. For hops, ``place`` is
    the *destination* and ``src_place`` the origin. ``nbytes`` records
    the modeled payload of hops and sends (0 for co-hosted moves), so
    traces double as data-movement ledgers; fault events are excluded
    from the ledger queries — a dropped transfer moved nothing.
    """

    t0: float
    t1: float
    place: int
    actor: str
    kind: str
    note: str = ""
    src_place: int | None = None
    nbytes: int = 0

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class TraceLog:
    """An append-only list of :class:`TraceEvent` with query helpers.

    A disabled log is a null recorder: :meth:`record` returns without
    touching the event list, and the fabric additionally guards its
    call sites so disabled runs never even build the kwargs.
    """

    __slots__ = ("enabled", "events")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def record(self, **kw) -> None:
        if not self.enabled:
            return
        self.events.append(TraceEvent(**kw))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def accesses(self, var: str | None = None) -> list[TraceEvent]:
        """Node-variable access events (``race_check`` runs only),
        optionally filtered to one variable."""
        out = [e for e in self.events if e.kind == "access"]
        if var is not None:
            out = [e for e in out if e.note.split(" ", 1)[1]
                   .split("[", 1)[0] == var]
        return out

    def at_place(self, place: int) -> list[TraceEvent]:
        return [e for e in self.events if e.place == place]

    def by_actor(self) -> dict:
        out: dict = defaultdict(list)
        for e in self.events:
            out[e.actor].append(e)
        return dict(out)

    def busy_time(self, kind: str = "compute") -> dict:
        """Total seconds each place spent on ``kind`` activity."""
        out: dict = defaultdict(float)
        for e in self.events:
            if e.kind == kind:
                out[e.place] += e.duration
        return dict(out)

    def first_compute_start(self) -> dict:
        """Earliest compute start per place (for phase-shift assertions)."""
        out: dict = {}
        for e in self.events:
            if e.kind == "compute":
                if e.place not in out or e.t0 < out[e.place]:
                    out[e.place] = e.t0
        return out

    def makespan(self) -> float:
        return max((e.t1 for e in self.events), default=0.0)

    def bytes_moved(self) -> int:
        """Total modeled bytes that crossed the network (lost
        transfers — ``kind == "fault"`` — moved nothing and are
        excluded; see :meth:`lost_bytes`)."""
        return sum(e.nbytes for e in self.events if e.kind != "fault")

    def bytes_by_place(self, direction: str = "in") -> dict:
        """Bytes received at (``"in"``) or sent from (``"out"``) each place."""
        out: dict = defaultdict(int)
        for e in self.events:
            if e.nbytes <= 0 or e.kind == "fault":
                continue
            if direction == "in":
                out[e.place] += e.nbytes
            else:
                if e.src_place is not None:
                    out[e.src_place] += e.nbytes
        return dict(out)

    def message_count(self) -> int:
        """Network transfers recorded (hops + sends with payload;
        fault events are not transfers)."""
        return sum(1 for e in self.events
                   if e.nbytes > 0 and e.kind != "fault")

    # -- resilience queries ------------------------------------------------
    def faults(self) -> list[TraceEvent]:
        """Injected faults that fired during the run."""
        return [e for e in self.events if e.kind == "fault"]

    def recoveries(self) -> list[TraceEvent]:
        """Recovery actions: retries, dedups, restores, respawns."""
        return [e for e in self.events
                if e.kind in ("retry", "dedup", "restore", "respawn")]

    def checkpoints(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "checkpoint"]

    def lost_bytes(self) -> int:
        """Payload destroyed by faults (drops without recovery,
        transfers into crashed PEs). Simulated fabrics charge modeled
        bytes; the process/socket fabrics charge *codec-actual* bytes —
        the serialized size the transport really lost, with numpy views
        costing their sliced bytes only."""
        return sum(e.nbytes for e in self.events if e.kind == "fault")

    # -- transport queries (socket fabric) ---------------------------------
    def transport(self) -> list[TraceEvent]:
        """Per-worker wire-counter summaries (socket fabric runs).

        Each event's note packs ``key=value`` counters: ``frames_in``/
        ``frames_out`` and ``bytes_in``/``bytes_out`` (whole frames,
        codec-actual on-wire sizes including header, buffer table and
        out-of-band buffer segments), ``hops_out`` (individual
        continuations emitted, ≥ frames when coalescing batches them),
        ``max_batch`` (most hops shipped in one frame), ``inbox_hwm``,
        ``window``, ``late`` and ``credit_waits``."""
        return [e for e in self.events if e.kind == "transport"]

    def _transport_stat(self, key: str) -> dict:
        prefix = key + "="
        out: dict = {}
        for e in self.transport():
            for field in e.note.split():
                if field.startswith(prefix):
                    value = int(field[len(prefix):])
                    out[e.place] = max(out.get(e.place, 0), value)
        return out

    def mailbox_hwm(self) -> dict:
        """Per-host inbox high-water mark (hops queued but not yet
        executed). Under credit-based flow control this is bounded by
        the sender window — the observable form of backpressure — and
        coalescing does not loosen the bound, because every hop in a
        batched frame still holds its own credit."""
        return self._transport_stat("inbox_hwm")

    def deadline_misses(self) -> int:
        """Hops that arrived after their propagated deadline (they are
        still delivered — deadlines are soft — but counted; every hop
        in a late coalesced frame counts individually)."""
        return sum(self._transport_stat("late").values())

    def frames_sent(self) -> dict:
        """Per-host count of data frames put on the wire. With hop
        coalescing this is ≤ :meth:`hops_sent` for the same host; the
        gap is the per-frame overhead coalescing saved."""
        return self._transport_stat("frames_out")

    def hops_sent(self) -> dict:
        """Per-host count of individual continuation hops emitted,
        regardless of how many frames carried them."""
        return self._transport_stat("hops_out")

    def max_coalesced_batch(self) -> int:
        """Most hops any single frame carried during the run (1 when
        coalescing never batched, 0 when no transport events exist)."""
        return max(self._transport_stat("max_batch").values(),
                   default=0)
