"""ThreadFabric: real concurrent execution of messenger programs.

One daemon thread per *host*, exactly like the MESSENGERS daemon: a
host may carry several logical nodes (see :mod:`repro.fabric.hosts`),
its thread steps one ready messenger at a time, and a messenger runs
until it hops to another host, blocks on an event, or finishes.
Cross-host migration hands the messenger's driver to the destination
host's ready queue — and, by default, also round-trips the agent
variables through :mod:`pickle`, both to enforce the NavP rule that
hopping state must be serializable (what actually crosses the network
in MESSENGERS) and to record real payload sizes. Hops between
co-hosted logical nodes are local pointer hand-overs.

Node variables and the event table of a logical node are touched only
by its host's thread (every ``waitEvent``/``signalEvent`` is executed
by a messenger *residing there*), so they need no locks; the ready
queues and mailboxes are the only cross-thread structures.

Time here is wall-clock time. On a multi-core host the numerics of
concurrently-resident messengers genuinely overlap (NumPy releases the
GIL inside its kernels); on a single-core container this fabric still
demonstrates correct concurrent semantics, while the virtual-time
:class:`~repro.fabric.sim.SimFabric` carries the performance
reproduction.
"""

from __future__ import annotations

import pickle
import queue
import threading
import time
from collections import defaultdict, deque
from typing import Any

from ..errors import DeadlockError, FabricError
from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..resilience.faults import FaultPlan, PlanRuntime
from ..resilience.faults import STATS as FAULT_STATS
from ..resilience.faults import ambient as ambient_faults
from ..resilience.recovery import RecoveryPolicy
from . import effects as fx
from .hosts import resolve_hosts
from .sim import FabricResult, Message
from .topology import Topology
from .trace import TraceLog

__all__ = ["ThreadFabric", "ThreadPlace"]

_STOP = object()


class _ThreadRequest:
    """Non-blocking receive handle for the thread fabric."""

    __slots__ = ("message", "done", "parked")

    def __init__(self):
        self.message: Message | None = None
        self.done = False
        self.parked = None  # (driver, place) waiting on this request


class _ThreadMailbox:
    """Thread-safe mailbox with (src, tag) matching."""

    def __init__(self, owner: "ThreadPlace"):
        self._owner = owner
        self._lock = threading.Lock()
        self._pending: deque[Message] = deque()
        self._waiting: deque[tuple] = deque()  # (src, tag, request)

    @staticmethod
    def _matches(want_src, want_tag, msg: Message) -> bool:
        if want_src is not fx.ANY_SOURCE and tuple(want_src) != msg.src:
            return False
        return want_tag is None or want_tag == msg.tag

    def deposit(self, msg: Message) -> None:
        wake = None
        with self._lock:
            for i, (src, tag, request) in enumerate(self._waiting):
                if self._matches(src, tag, msg):
                    del self._waiting[i]
                    request.message = msg
                    request.done = True
                    wake = request.parked
                    break
            else:
                self._pending.append(msg)
        if wake is not None:
            driver, _place = wake
            self._owner.ready.put((driver, msg))  # the host's queue

    def post(self, src, tag) -> _ThreadRequest:
        request = _ThreadRequest()
        with self._lock:
            for i, msg in enumerate(self._pending):
                if self._matches(src, tag, msg):
                    del self._pending[i]
                    request.message = msg
                    request.done = True
                    return request
            self._waiting.append((src, tag, request))
        return request

    def park(self, request: _ThreadRequest, driver, place) -> bool:
        """Attach a blocked driver; False if the request completed first."""
        with self._lock:
            if request.done:
                return False
            request.parked = (driver, place)
            return True


class ThreadPlace:
    """One logical node: its variables, events, and mailbox.

    ``ready`` is the *host's* shared run queue — several logical nodes
    co-hosted on one daemon thread share it, and only that thread ever
    touches the node's event table (MESSENGERS semantics).
    """

    def __init__(self, coord: tuple, index: int, host: int,
                 ready: queue.Queue):
        self.coord = coord
        self.index = index
        self.host = host
        self.vars: dict = {}
        self.ready = ready
        self.event_counts: dict = defaultdict(int)
        self.event_waiters: dict = defaultdict(deque)
        self.mailbox = _ThreadMailbox(self)

    def __repr__(self) -> str:
        return f"ThreadPlace{self.coord}"


class _Ctx:
    __slots__ = ("fabric", "place")

    def __init__(self, fabric, place):
        self.fabric = fabric
        self.place = place


class ThreadFabric:
    """Wall-clock executor: one daemon thread per PE."""

    def __init__(
        self,
        topology: Topology,
        machine: MachineSpec | None = None,
        pickle_hops: bool = True,
        trace: bool = False,
        hosts=None,
        faults: FaultPlan | None = None,
        recovery=True,
    ):
        self.topology = topology
        self.machine = machine if machine is not None else SUN_BLADE_100
        self.pickle_hops = pickle_hops
        self.trace = TraceLog(enabled=trace)
        self._trace_lock = threading.Lock()
        host_map = resolve_hosts(topology, hosts)
        self.n_hosts = max(host_map.values()) + 1
        self._host_queues = [queue.Queue() for _ in range(self.n_hosts)]
        self.places = [
            ThreadPlace(coord, i, host_map[coord],
                        self._host_queues[host_map[coord]])
            for i, coord in enumerate(topology.coords)
        ]
        self._by_coord = {p.coord: p for p in self.places}
        self._live = 0
        self._live_lock = threading.Lock()
        self._all_done = threading.Event()
        self._failure: BaseException | None = None
        self._started = False
        self._names: dict = {}
        self._t0 = 0.0
        self.hop_bytes_total = 0
        self.hop_count = 0
        # Fault injection: this fabric interprets message faults
        # (drop / duplicate / delay) on cross-host deliveries as real
        # failed attempts, retried with real backoff sleeps under the
        # recovery policy. Crash and slow-node specs are inert here —
        # crashes belong to the process fabric (a thread cannot be
        # SIGKILLed meaningfully) and there is no modeled compute cost
        # to degrade. All hooks sit behind `self._runtime is None`.
        if faults is None:
            faults, ambient_recovery = ambient_faults()
            if faults is not None:
                recovery = ambient_recovery
        if faults is not None and faults:
            self._runtime: PlanRuntime | None = PlanRuntime(
                faults, self._resolve_place)
            self._recovery = RecoveryPolicy.coerce(recovery)
            self._fault_lock = threading.Lock()
        else:
            self._runtime = None
            self._recovery = RecoveryPolicy()
        self.lost: list[str] = []  # messengers destroyed by faults
        self._ir_roots: list = []  # (program, entry coord, env snapshot)
        self._primed: list = []    # (coord, event, args, count)

    def _resolve_place(self, spec_place):
        if isinstance(spec_place, int):
            return (spec_place if 0 <= spec_place < len(self.places)
                    else None)
        try:
            coord = self.topology.normalize(tuple(spec_place))
        except Exception:
            return None
        place = self._by_coord.get(coord)
        return place.index if place is not None else None

    # -- setup ---------------------------------------------------------
    def place(self, coord) -> ThreadPlace:
        return self._by_coord[self.topology.normalize(coord)]

    def load(self, coord, **node_vars) -> None:
        self.place(coord).vars.update(node_vars)

    def signal_initial(self, coord, name: str, *args, count: int = 1) -> None:
        place = self.place(coord)
        place.event_counts[(name, tuple(args))] += count
        self._primed.append((place.coord, name, tuple(args), count))

    def inject(self, coord, messenger, delay: float = 0.0) -> None:
        if self._started:
            raise FabricError("cannot inject externally after run() started")
        interp = getattr(messenger, "interp", None)
        if interp is not None:
            self._ir_roots.append((interp.program,
                                   self.place(coord).coord,
                                   dict(interp.env)))
        self._spawn(messenger, self.place(coord))

    # -- execution --------------------------------------------------------
    def run(self, timeout: float = 120.0) -> FabricResult:
        self._started = True
        self._t0 = time.perf_counter()
        threads = [
            threading.Thread(
                target=self._worker, args=(q,), daemon=True,
                name=f"host{h}",
            )
            for h, q in enumerate(self._host_queues)
        ]
        for t in threads:
            t.start()
        with self._live_lock:
            if self._live == 0:
                self._all_done.set()
        finished = self._all_done.wait(timeout=timeout)
        for q in self._host_queues:
            q.put(_STOP)
        for t in threads:
            t.join(timeout=5.0)
        if self._failure is not None:
            raise FabricError(
                f"messenger raised {type(self._failure).__name__}: "
                f"{self._failure}"
            ) from self._failure
        if not finished:
            casualties = (
                "; fault injection destroyed messenger(s) with recovery "
                "disabled: " + ", ".join(self.lost) if self.lost else ""
            )
            verdict = ""
            try:
                from ..analysis.protocol_mc import runtime_deadlock_hint
                hint = runtime_deadlock_hint(self._ir_roots, self._primed,
                                             window=None)
                if hint:
                    verdict = "\n" + hint
            except Exception:  # the hint must never mask the deadlock
                pass
            raise DeadlockError(
                f"thread fabric made no progress within {timeout}s "
                f"({self._live} messenger(s) still live){casualties}"
                f"{verdict}"
            )
        return FabricResult(
            time=time.perf_counter() - self._t0,
            trace=self.trace,
            places={p.coord: p.vars for p in self.places},
        )

    # -- internals -----------------------------------------------------------
    def _record(self, **kw) -> None:
        if self.trace.enabled:
            with self._trace_lock:
                self.trace.record(**kw)

    def _unique_name(self, messenger) -> str:
        base = getattr(messenger, "name", None) or type(messenger).__name__
        with self._live_lock:
            count = self._names.get(base, 0)
            self._names[base] = count + 1
        return base if count == 0 else f"{base}#{count}"

    def _spawn(self, messenger, place: ThreadPlace) -> None:
        messenger._ctx = _Ctx(self, place)
        messenger._name = self._unique_name(messenger)
        with self._live_lock:
            self._live += 1
        place.ready.put((_Driver(self, messenger), None))

    def _finish_one(self) -> None:
        with self._live_lock:
            self._live -= 1
            if self._live == 0:
                self._all_done.set()

    def _fail(self, exc: BaseException) -> None:
        if self._failure is None:
            self._failure = exc
        self._all_done.set()

    def _transfer_fault(self, kind: str, actor: str, place, dst,
                        tag, nbytes: int) -> int:
        """Consult the fault plan for one cross-host transfer.

        Returns 0 when the transfer is lost (drop, recovery disabled),
        1 to deliver normally (possibly after real retry backoff), or
        2 to deliver twice (duplicate, recovery disabled). Matching is
        serialized under a lock — the plan's counted matchers see one
        global transfer order even though deliveries come from many PE
        threads (which order that is stays scheduler-dependent: this
        fabric demonstrates the mechanisms; determinism lives on the
        virtual-time fabric).
        """
        with self._fault_lock:
            if kind == "hop":
                self._runtime.note_hop()
            spec = self._runtime.message_action(
                kind, place.index, dst.index, tag)
        if spec is None:
            return 1
        FAULT_STATS["fired"] += 1
        now = time.perf_counter() - self._t0
        if spec.action == "delay":
            self._record(
                t0=now, t1=now, place=dst.index, actor=actor,
                kind="fault", note=f"{kind} delayed {spec.seconds}s",
                src_place=place.index)
            time.sleep(min(spec.seconds, 0.1))
            return 1
        if spec.action == "duplicate":
            if kind == "hop" or self._recovery.enabled:
                FAULT_STATS["masked"] += 1
                self._record(
                    t0=now, t1=now, place=dst.index, actor=actor,
                    kind="dedup", note=f"duplicate {kind} discarded",
                    src_place=place.index)
                return 1
            self._record(
                t0=now, t1=now, place=dst.index, actor=actor,
                kind="fault", note="send duplicated (delivered twice)",
                src_place=place.index)
            return 2
        # drop
        if not self._recovery.enabled:
            FAULT_STATS["lost"] += 1
            self._record(
                t0=now, t1=now, place=dst.index, actor=actor,
                kind="fault", note=f"{kind} dropped (no recovery)",
                src_place=place.index, nbytes=nbytes)
            return 0
        FAULT_STATS["masked"] += 1
        self._record(
            t0=now, t1=now, place=dst.index, actor=actor,
            kind="fault", note=f"{kind} dropped (retransmitting)",
            src_place=place.index)
        delays = self._recovery.delays()
        backoff = delays[0] if delays else 0.0
        time.sleep(min(backoff, 0.05))  # one real retransmit attempt
        end = time.perf_counter() - self._t0
        self._record(
            t0=now, t1=end, place=dst.index, actor=actor,
            kind="retry", note=f"{kind} retransmit",
            src_place=place.index)
        return 1

    def _worker(self, ready: queue.Queue) -> None:
        while True:
            item = ready.get()
            if item is _STOP:
                return
            driver, value = item
            try:
                driver.step(value)
            except BaseException as exc:  # noqa: BLE001 - reported to run()
                self._fail(exc)
                return


class _Driver:
    """Steps one messenger's generator on whichever PE thread owns it."""

    __slots__ = ("fabric", "messenger", "gen")

    def __init__(self, fabric: ThreadFabric, messenger):
        self.fabric = fabric
        self.messenger = messenger
        self.gen = messenger.main()

    def step(self, value) -> None:
        """Advance until the messenger blocks, migrates hosts, or ends.

        The messenger's *logical* place is tracked in its context; a hop
        between logical nodes of the same host continues inline (a local
        pointer hand-over), while a cross-host hop re-queues the driver
        on the destination host's daemon.
        """
        fabric = self.fabric
        msgr = self.messenger
        while True:
            place = msgr._ctx.place
            try:
                eff = self.gen.send(value)
            except StopIteration:
                fabric._finish_one()
                return
            value = None

            if isinstance(eff, fx.Hop):
                dst = fabric.place(eff.coord)
                crosses_host = dst.host != place.host
                nbytes = 0
                if fabric.pickle_hops and crosses_host:
                    agent = {
                        k: v for k, v in vars(msgr).items()
                        if not k.startswith("_")
                    }
                    blob = pickle.dumps(agent, protocol=pickle.HIGHEST_PROTOCOL)
                    nbytes = len(blob)
                    with fabric._live_lock:
                        fabric.hop_bytes_total += len(blob)
                        fabric.hop_count += 1
                    # restore through pickle: what a real network delivers
                    for k, v in pickle.loads(blob).items():
                        setattr(msgr, k, v)
                if crosses_host and fabric._runtime is not None:
                    if not fabric._transfer_fault(
                            "hop", msgr._name, place, dst, None, nbytes):
                        # the hop was dropped with recovery disabled:
                        # the carried continuation was the only copy
                        fabric.lost.append(msgr._name)
                        fabric._finish_one()
                        return
                msgr._ctx.place = dst
                fabric._record(
                    t0=time.perf_counter() - fabric._t0,
                    t1=time.perf_counter() - fabric._t0,
                    place=dst.index, actor=msgr._name, kind="hop",
                    src_place=place.index, nbytes=nbytes,
                )
                if crosses_host:
                    dst.ready.put((self, None))
                    return
                continue

            if isinstance(eff, fx.Compute):
                t0 = time.perf_counter() - fabric._t0
                value = eff.fn() if eff.fn is not None else None
                fabric._record(
                    t0=t0, t1=time.perf_counter() - fabric._t0,
                    place=place.index, actor=msgr._name, kind="compute",
                    note=eff.note,
                )
                continue

            if isinstance(eff, fx.WaitEvent):
                key = (eff.name, tuple(eff.args))
                if place.event_counts[key] > 0:
                    place.event_counts[key] -= 1
                    continue
                place.event_waiters[key].append(self)
                return

            if isinstance(eff, fx.SignalEvent):
                key = (eff.name, tuple(eff.args))
                remaining = eff.count
                waiters = place.event_waiters[key]
                while remaining > 0 and waiters:
                    place.ready.put((waiters.popleft(), None))
                    remaining -= 1
                place.event_counts[key] += remaining
                continue

            if isinstance(eff, fx.Inject):
                fabric._spawn(eff.messenger, place)
                continue

            if isinstance(eff, fx.Send):
                dst = fabric.place(eff.dst)
                payload = eff.payload
                nbytes = 0
                if fabric.pickle_hops and dst.host != place.host:
                    blob = pickle.dumps(payload,
                                        protocol=pickle.HIGHEST_PROTOCOL)
                    nbytes = len(blob)
                    payload = pickle.loads(blob)
                if dst.host != place.host and fabric._runtime is not None:
                    verdict = fabric._transfer_fault(
                        "send", msgr._name, place, dst, eff.tag, nbytes)
                    if not verdict:
                        continue  # message lost (recovery disabled)
                    if verdict == 2:  # duplicated, recovery disabled
                        dst.mailbox.deposit(
                            Message(place.coord, eff.tag, payload))
                dst.mailbox.deposit(Message(place.coord, eff.tag, payload))
                continue

            if isinstance(eff, fx.Recv):
                request = place.mailbox.post(eff.src, eff.tag)
                if request.done:
                    value = request.message
                    continue
                if place.mailbox.park(request, self, place):
                    return
                value = request.message
                continue

            if isinstance(eff, fx.IRecv):
                value = place.mailbox.post(eff.src, eff.tag)
                continue

            if isinstance(eff, fx.WaitRequest):
                request = eff.request
                if request.done:
                    value = request.message
                    continue
                if place.mailbox.park(request, self, place):
                    return
                value = request.message
                continue

            if isinstance(eff, fx.Delay):
                if eff.seconds > 0:
                    time.sleep(min(eff.seconds, 0.1))
                continue

            raise FabricError(
                f"unknown effect {eff!r} from messenger {msgr._name}"
            )
