"""Execution fabrics: virtual-time DES, threads, processes, sockets."""

from . import effects, payload
from .desim import (
    Resource,
    Semaphore,
    Simulator,
    SimProcess,
    Timeout,
    Trigger,
    perturbed,
)
from .factory import (FABRIC_CAPABILITIES, FABRIC_KINDS, FABRIC_REGISTRY,
                      fabric_capabilities, make_fabric)
from .hb import HBTracker, Race, RaceAccess
from .hosts import block_hosts, cyclic_hosts, host_count, resolve_hosts
from .process import ProcessFabric
from .sim import FabricResult, Message, SimFabric, SimPlace
from .sizes import agent_nbytes, codec_nbytes, model_nbytes
from .socket import PhiAccrualDetector, SocketFabric
from .threads import ThreadFabric, ThreadPlace
from .topology import Grid1D, Grid2D, Topology
from .trace import TraceEvent, TraceLog

__all__ = [
    "effects",
    "payload",
    "block_hosts",
    "cyclic_hosts",
    "host_count",
    "resolve_hosts",
    "FABRIC_CAPABILITIES",
    "FABRIC_KINDS",
    "FABRIC_REGISTRY",
    "fabric_capabilities",
    "make_fabric",
    "ProcessFabric",
    "SocketFabric",
    "PhiAccrualDetector",
    "ThreadFabric",
    "Simulator",
    "SimProcess",
    "Timeout",
    "Resource",
    "Semaphore",
    "Trigger",
    "perturbed",
    "HBTracker",
    "Race",
    "RaceAccess",
    "SimFabric",
    "SimPlace",
    "Message",
    "FabricResult",
    "Grid1D",
    "Grid2D",
    "Topology",
    "TraceEvent",
    "TraceLog",
    "agent_nbytes",
    "codec_nbytes",
    "model_nbytes",
]
