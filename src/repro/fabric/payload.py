"""Zero-copy hop-payload codec (pickle protocol 5, out-of-band buffers).

Every migration on a distributed fabric ships an agent snapshot whose
bulk is matrix blocks — numpy arrays (or views produced by
:mod:`repro.util.blocks`) sitting in the agent environment. Classic
pickling copies those blocks *into* the frame byte string: one copy at
``dumps``, another at ``loads``. At algorithmic-block hop rates that
copy tax is the transport ceiling (``repro bench``'s
``pickle_roundtrip``).

This codec splits a payload into

* a **frame**: the pickle byte stream with every eligible buffer
  *elided* (pickle protocol 5 ``buffer_callback``), and
* an ordered list of **out-of-band buffers**: flat ``memoryview``\\ s
  over the arrays' own memory — no copy is made on the encode side.

:func:`decode` rebuilds the object graph with arrays reconstructed
*over* the supplied buffers (``pickle.loads(..., buffers=...)``), so a
receiver that read the buffer bytes straight off a socket into
preallocated storage pays exactly one copy end to end — the unavoidable
kernel read — instead of three.

When zero-copy degrades to copy
-------------------------------

* **Non-contiguous views** (a strided column slice) are copied into a
  contiguous block by numpy's own reducer before pickling — only the
  sliced bytes, never the base array.
* **Small buffers** are kept in-band: below
  :data:`OOB_THRESHOLD` bytes the bookkeeping (a buffer-table entry, a
  scatter/gather element, a per-buffer allocation and ``recv_into`` on
  the receive side) costs more than the copy it saves. Measured on
  loopback TCP, the crossover sits near 100 KiB — small control hops
  pickle in-band exactly as before, while algorithmic matrix blocks
  (hundreds of KiB to MiB) ship zero-copy, 2.7-5x faster.
* **Objects without buffer support** (lists, dicts, scalars, shadow
  arrays — which hold no data at all) pickle in-band as always.

The codec is transport-agnostic: :mod:`repro.fabric.wire` ships the
``(frame, buffers)`` pair as one multi-buffer frame via scatter/gather
I/O, but the pair round-trips just as well through a queue or a file.
"""

from __future__ import annotations

import pickle

__all__ = [
    "PROTOCOL",
    "OOB_THRESHOLD",
    "encode",
    "decode",
    "nbytes",
    "encoded_nbytes",
]

PROTOCOL = 5

# Buffers smaller than this stay in-band: the out-of-band machinery
# (table slot, gather element, receive-side allocation) outweighs the
# copy it saves until roughly 100 KiB on loopback TCP. Algorithmic
# matrix blocks (hundreds of KiB up) always ship out-of-band.
OOB_THRESHOLD = 96 * 1024


def encode(obj) -> tuple[bytes, list]:
    """Serialize ``obj`` to ``(frame, buffers)`` without copying arrays.

    ``buffers`` is an ordered list of flat, C-contiguous
    ``memoryview``\\ s over the *original* objects' memory; the caller
    must ship (or consume) them before mutating the source arrays.
    """
    buffers: list = []

    def gate(pb):
        try:
            view = pb.raw()  # flat view over the original memory
        except BufferError:  # exotic layout: let pickle copy it in-band
            return True
        if view.nbytes < OOB_THRESHOLD:
            return True  # in-band: a table slot costs more than the copy
        buffers.append(view)
        return None  # falsy: ship out-of-band

    frame = pickle.dumps(obj, protocol=PROTOCOL, buffer_callback=gate)
    return frame, buffers


def decode(frame, buffers=()):
    """Inverse of :func:`encode`; arrays are built over ``buffers``.

    ``buffers`` may be any buffer-protocol objects (``memoryview``,
    ``bytearray``, ``bytes``) in encode order. Mutable buffers yield
    writable arrays; the arrays *alias* the buffers, so a transport
    must hand over ownership (the wire layer allocates fresh storage
    per frame).
    """
    return pickle.loads(frame, buffers=buffers)


def nbytes(frame, buffers=()) -> int:
    """Bytes an encoded pair occupies (frame + out-of-band buffers)."""
    total = len(frame)
    for b in buffers:
        total += b.nbytes if isinstance(b, memoryview) else len(b)
    return total


def encoded_nbytes(obj) -> int:
    """Codec-actual serialized size of ``obj``.

    This is what the data-movement ledger charges: a numpy *view*
    costs its sliced bytes only — encoding never ships the base array.
    """
    frame, buffers = encode(obj)
    return nbytes(frame, buffers)
