"""Logical-to-physical node mapping (MESSENGERS-style virtualization).

A MESSENGERS daemon hosts many *logical* nodes on one physical
workstation; navigational programs address logical nodes, and a hop
between two logical nodes of the same daemon is a local operation. This
is also how the paper's fine-granularity presentations (``N == P``)
run on real clusters: the logical network is the algorithm's, the
physical one the machine room's.

All three fabrics accept a ``hosts`` argument: a dict mapping each
topology coordinate to a physical host index, or a callable
``coord -> host``. Logical nodes of one host share its CPU and NICs
(sim), its daemon thread (threads), or its OS process (processes);
hops and sends between co-hosted nodes cost only the local switch
time.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .topology import Topology

__all__ = ["resolve_hosts", "host_count", "block_hosts", "cyclic_hosts"]


def resolve_hosts(topology: Topology, hosts) -> dict:
    """Normalize a hosts spec to ``{coord: host_index}`` (dense hosts).

    ``hosts`` may be None (identity: one host per place), a dict, or a
    callable over coordinates. Host indices must form ``0..H-1``.
    """
    if hosts is None:
        return {coord: i for i, coord in enumerate(topology.coords)}
    if callable(hosts):
        mapping = {coord: int(hosts(coord)) for coord in topology.coords}
    else:
        mapping = {topology.normalize(c): int(h) for c, h in hosts.items()}
        missing = [c for c in topology.coords if c not in mapping]
        if missing:
            raise ConfigurationError(
                f"hosts mapping misses coordinates {missing[:5]}"
            )
    used = sorted(set(mapping.values()))
    if used != list(range(len(used))):
        raise ConfigurationError(
            f"host indices must be dense 0..H-1, got {used}"
        )
    return mapping


def host_count(mapping: dict) -> int:
    """Number of physical hosts in a resolved ``{coord: host}`` map."""
    return max(mapping.values()) + 1


def block_hosts(topology: Topology, n_hosts: int):
    """Contiguous blocks of places per host (in coordinate order)."""
    places = len(topology)
    if not 1 <= n_hosts <= places:
        raise ConfigurationError(
            f"need 1..{places} hosts, got {n_hosts}"
        )
    per = (places + n_hosts - 1) // n_hosts
    return {
        coord: min(i // per, n_hosts - 1)
        for i, coord in enumerate(topology.coords)
    }


def cyclic_hosts(topology: Topology, n_hosts: int):
    """Round-robin placement of places over hosts."""
    places = len(topology)
    if not 1 <= n_hosts <= places:
        raise ConfigurationError(
            f"need 1..{places} hosts, got {n_hosts}"
        )
    return {
        coord: i % n_hosts for i, coord in enumerate(topology.coords)
    }
