"""Logical PE networks (1-D chains and 2-D grids of workstations).

The paper addresses PEs by ``HnodeID`` in 1-D (Section 3.1) and by
``(VnodeID, HnodeID)`` in 2-D (Section 3.4). Coordinates here are
always tuples — ``(j,)`` in 1-D and ``(i, j)`` in 2-D — and every
topology provides a dense ``index`` for array-like storage.

All PEs are assumed fully connected through a collision-free switch,
as the paper assumes for modern hardware; the topology therefore only
defines naming, not routing.
"""

from __future__ import annotations

from ..errors import TopologyError

__all__ = ["Topology", "Grid1D", "Grid2D"]


class Topology:
    """Base class: a finite set of PE coordinates."""

    def __init__(self, coords):
        self._coords = tuple(tuple(c) for c in coords)
        if len(set(self._coords)) != len(self._coords):
            raise TopologyError("duplicate coordinates in topology")
        self._index = {c: i for i, c in enumerate(self._coords)}

    @property
    def coords(self) -> tuple:
        return self._coords

    def __len__(self) -> int:
        return len(self._coords)

    def __contains__(self, coord) -> bool:
        return tuple(coord) in self._index

    def index(self, coord) -> int:
        try:
            return self._index[tuple(coord)]
        except KeyError:
            raise TopologyError(
                f"coordinate {coord!r} not in {self!r}"
            ) from None

    def normalize(self, coord) -> tuple:
        """Accept ints or tuples; return the canonical coordinate tuple."""
        if isinstance(coord, int):
            coord = (coord,)
        coord = tuple(coord)
        if coord not in self:
            raise TopologyError(f"coordinate {coord!r} not in {self!r}")
        return coord


class Grid1D(Topology):
    """A west-to-east chain of ``p`` PEs; ``node(j)`` is PE ``HnodeID = j``."""

    def __init__(self, p: int):
        if p < 1:
            raise TopologyError(f"need at least one PE, got {p}")
        self.p = p
        super().__init__([(j,) for j in range(p)])

    def node(self, j: int) -> tuple:
        """The paper's ``node(j)`` map (Figure 5)."""
        if not 0 <= j < self.p:
            raise TopologyError(f"node({j}) out of range for {self.p} PEs")
        return (j,)

    def east(self, j: int) -> tuple:
        """Neighbour one step east, wrapping (for ring algorithms)."""
        return ((j + 1) % self.p,)

    def west(self, j: int) -> tuple:
        return ((j - 1) % self.p,)

    def __repr__(self) -> str:
        return f"Grid1D({self.p})"


class Grid2D(Topology):
    """An ``rows x cols`` grid; ``node(i, j)`` is PE ``(VnodeID=i, HnodeID=j)``."""

    def __init__(self, rows: int, cols: int | None = None):
        if cols is None:
            cols = rows
        if rows < 1 or cols < 1:
            raise TopologyError(f"invalid grid {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        super().__init__([(i, j) for i in range(rows) for j in range(cols)])

    def node(self, i: int, j: int) -> tuple:
        """The paper's ``node(i, j)`` map (Figure 11)."""
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise TopologyError(
                f"node({i}, {j}) out of range for {self.rows}x{self.cols}"
            )
        return (i, j)

    def east(self, i: int, j: int) -> tuple:
        return (i, (j + 1) % self.cols)

    def west(self, i: int, j: int) -> tuple:
        return (i, (j - 1) % self.cols)

    def south(self, i: int, j: int) -> tuple:
        return ((i + 1) % self.rows, j)

    def north(self, i: int, j: int) -> tuple:
        return ((i - 1) % self.rows, j)

    def __repr__(self) -> str:
        return f"Grid2D({self.rows}, {self.cols})"
