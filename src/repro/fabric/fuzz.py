"""Schedule fuzzing: perturb simultaneous-event order, check invariance.

The discrete-event simulator breaks virtual-time ties in insertion
order; :func:`repro.fabric.desim.perturbed` (or a ``perturb_seed``)
replaces that policy with a seeded random draw over *all* events ready
at the current instant. Virtual timestamps never change — only the
order in which same-time work runs — so a correctly synchronized
program must produce bit-identical results on every seed. This module
packages the two ways the repo uses that:

* **golden invariance** (:func:`fuzz_golden_suites`): rerun the paper's
  pipelined matmul suites under many seeds and demand the assembled
  product matrix stay bit-exact. A mismatch means a schedule-dependent
  result — a race the wait/signal protocol failed to order.
* **corpus cross-validation** (:func:`fuzz_corpus`): run the known-racy
  corpus programs with the dynamic happens-before checker on
  (:mod:`repro.fabric.hb`), across many seeds, and compare what it
  observes against the static report of
  :mod:`repro.analysis.races`. The contract is one-sided soundness:
  fuzzing must *reproduce* at least one race per seeded program, and
  every dynamically observed race must have been *predicted* statically
  (``dynamic ⊆ static``).

``repro fuzz-schedules`` is the CLI face of both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.presets import FAST_TEST_MACHINE
from .desim import perturbed
from .sim import SimFabric
from .topology import Grid1D

__all__ = ["ScheduleCheck", "CorpusFuzz", "fuzz_golden_suites",
           "fuzz_corpus", "run_corpus_case", "static_signatures",
           "dynamic_signature", "fuzz_deadlocks"]

DEFAULT_SEEDS = tuple(range(20))


@dataclass(frozen=True)
class ScheduleCheck:
    """Result of fuzzing one program's schedule against a baseline."""

    label: str
    seeds: tuple
    mismatched_seeds: tuple

    @property
    def ok(self) -> bool:
        return not self.mismatched_seeds

    def describe(self) -> str:
        if self.ok:
            return (f"{self.label}: bit-exact across "
                    f"{len(self.seeds)} fuzzed schedules")
        return (f"{self.label}: result differs from baseline under "
                f"seeds {list(self.mismatched_seeds)!r}")


@dataclass(frozen=True)
class CorpusFuzz:
    """Dynamic-vs-static comparison for one known-racy corpus case."""

    case_name: str
    seeds: tuple
    static: frozenset     # signatures the static analyzer predicted
    dynamic: frozenset    # signatures the HB checker observed

    @property
    def reproduced(self) -> bool:
        """Did fuzzing surface at least one race dynamically?"""
        return bool(self.dynamic)

    @property
    def unpredicted(self) -> frozenset:
        """Dynamic findings the static pass missed (must be empty)."""
        return self.dynamic - self.static

    @property
    def ok(self) -> bool:
        return self.reproduced and not self.unpredicted

    def describe(self) -> str:
        status = "ok" if self.ok else (
            "NOT reproduced" if not self.reproduced
            else f"{len(self.unpredicted)} unpredicted dynamic race(s)")
        return (f"{self.case_name}: {len(self.dynamic)} dynamic / "
                f"{len(self.static)} static race site-pair(s) — {status}")


# --------------------------------------------------------------------------
# race signatures: the common currency of static and dynamic findings
# --------------------------------------------------------------------------

def _site_key(side) -> str:
    return repr(side)


def dynamic_signature(race) -> tuple:
    """``(var, sorted site pairs)`` for a :class:`repro.fabric.hb.Race`.

    A site is ``(program, full statement path, write)`` — the same
    shape :func:`static_signatures` produces, so set inclusion between
    the two is meaningful.
    """
    sides = []
    for s in (race.a, race.b):
        path = None
        if s.site is not None:
            body_path, pc = s.site
            path = tuple(body_path) + (pc,)
        sides.append((s.program or s.actor, path, s.write))
    return (race.var, tuple(sorted(sides, key=_site_key)))


def static_signatures(case) -> frozenset:
    """Predicted ``(var, site pair)`` signatures for a corpus case."""
    from ..analysis.races import analyze_races

    analysis = analyze_races(case.registry[case.root],
                             registry=case.registry, primed=case.primed)
    out = set()
    for race in analysis.races:
        sides = tuple(sorted(
            ((acc.thread, tuple(acc.path), acc.write)
             for acc in (race.a, race.b)),
            key=_site_key))
        out.add((race.a.var, sides))
    return frozenset(out)


# --------------------------------------------------------------------------
# golden invariance
# --------------------------------------------------------------------------

def _ir2d_builders() -> dict:
    from ..matmul.ir2d import build_fig11, build_fig13, build_fig15

    return {"fig11": build_fig11, "fig13": build_fig13,
            "fig15": build_fig15}


def fuzz_golden_suites(g: int = 3, seeds=DEFAULT_SEEDS,
                       include_1d: bool = True) -> list:
    """Fuzz the paper's pipelined matmul programs; results must not move.

    Covers the three 2-D IR stages (Figures 11/13/15) and, with
    ``include_1d``, the 1-D pipelined and phase-shifted chains. Each
    program runs once unperturbed for a baseline, then once per seed;
    any bitwise difference in the assembled product is a mismatch.
    """
    from ..matmul.ir2d import run_ir2d_suite

    checks = []
    for label, build in _ir2d_builders().items():
        suite = build(g)
        base, _ = run_ir2d_suite(suite)
        bad = []
        for seed in seeds:
            with perturbed(seed):
                c, _ = run_ir2d_suite(suite)
            if not np.array_equal(base, c):
                bad.append(seed)
        checks.append(ScheduleCheck(f"{label}-g{g}", tuple(seeds),
                                    tuple(bad)))

    if include_1d:
        from ..matmul.kinds import MatmulCase
        from ..matmul.navp1d import run_phase_1d, run_pipelined_1d

        case = MatmulCase(n=12, ab=4)
        for label, run in (("pipelined-1d", run_pipelined_1d),
                           ("phase-1d", run_phase_1d)):
            base = run(case, 3, machine=FAST_TEST_MACHINE, trace=False).c
            bad = []
            for seed in seeds:
                with perturbed(seed):
                    c = run(case, 3, machine=FAST_TEST_MACHINE,
                            trace=False).c
                if not np.array_equal(base, c):
                    bad.append(seed)
            checks.append(ScheduleCheck(label, tuple(seeds), tuple(bad)))
    return checks


# --------------------------------------------------------------------------
# corpus cross-validation
# --------------------------------------------------------------------------

def run_corpus_case(case, perturb_seed: int | None = None,
                    machine=None) -> list:
    """One dynamic run of a racy corpus case; returns observed races.

    The case's programs are installed in the registry only for the
    duration of the run; the fabric mirrors the case's declared setup
    (1-D topology, per-place initial signals, entry injection).
    """
    from ..analysis.corpus import installed
    from ..navp.interp import IRMessenger

    with installed(case):
        fabric = SimFabric(
            Grid1D(case.places),
            machine=machine if machine is not None else FAST_TEST_MACHINE,
            trace=False, race_check=True, perturb_seed=perturb_seed)
        for p in range(case.places):
            for event, args, count in case.initial_signals:
                fabric.signal_initial((p,), event, *args, count=count)
        fabric.inject(case.entry, IRMessenger(case.root))
        fabric.run()
        return list(fabric.hb.races)


def fuzz_deadlocks(case, seeds=DEFAULT_SEEDS, machine=None) -> tuple:
    """Sweep fuzzed schedules, splitting seeds by liveness outcome.

    Returns ``(deadlocked, clean)`` seed tuples. This is the dynamic
    half of the model checker's cross-validation contract: a corpus
    case the checker calls DEADLOCK must deadlock for at least one
    seed, and one it VERIFIES must never deadlock. (Credit-starvation
    verdicts are gated-semantics-only: SimFabric has no credit window,
    so those cases must run clean here — that *is* the confirmation.)

    By default the sweep runs on a zero-sync-overhead machine: with
    inject/event costs at zero, every synchronization decision lands
    in one same-virtual-time pool, which is exactly the schedule
    freedom the perturbation shuffles (and a real fabric's coalesced
    delivery exhibits). Non-zero overheads would serialize the ties
    and mask schedule-dependent deadlocks.
    """
    from dataclasses import replace

    from ..errors import DeadlockError

    if machine is None:
        machine = replace(FAST_TEST_MACHINE,
                          inject_overhead_s=0.0, event_overhead_s=0.0)
    deadlocked, clean = [], []
    for seed in seeds:
        try:
            run_corpus_case(case, perturb_seed=seed, machine=machine)
        except DeadlockError:
            deadlocked.append(seed)
        else:
            clean.append(seed)
    return tuple(deadlocked), tuple(clean)


def fuzz_corpus(seeds=DEFAULT_SEEDS, cases=None, machine=None) -> list:
    """Cross-validate the racy corpus: dynamic findings ⊆ static report.

    Every returned :class:`CorpusFuzz` must be ``ok``: at least one
    race reproduced dynamically, none observed that the static analyzer
    did not predict.
    """
    if cases is None:
        from ..analysis.corpus import RACY_CORPUS
        cases = RACY_CORPUS
    out = []
    for case in cases:
        static = static_signatures(case)
        dynamic: set = set()
        for seed in seeds:
            for race in run_corpus_case(case, perturb_seed=seed,
                                        machine=machine):
                dynamic.add(dynamic_signature(race))
        out.append(CorpusFuzz(case.name, tuple(seeds), static,
                              frozenset(dynamic)))
    return out
