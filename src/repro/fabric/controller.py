"""Controller-side machinery shared by the distributed fabrics.

Both :class:`~repro.fabric.process.ProcessFabric` (workers are OS
processes wired by multiprocessing queues) and
:class:`~repro.fabric.socket.SocketFabric` (workers are OS processes
reachable over real TCP) are *controller fabrics*: a supervisor process
injects IR messengers, routes or observes cross-host hops, journals
traffic for replay, and collects the final node variables. The pieces
that do not care which transport carries the bytes live here:

:class:`ControllerFabric`
    The setup-side base class — host resolution, fault-plan wiring,
    ``load``/``signal_initial`` collection, and the IR-only
    :meth:`~ControllerFabric.inject` capability check (a live generator
    frame cannot be pickled; an IR continuation can). Both fabrics
    inherit this instead of duplicating it.

:class:`WorkerCore`
    The execution engine of one worker host: node variables, event
    tables, the ready deque, ``(messenger id, hop count)`` delivery
    dedup, and the quiescent checkpoint/restore protocol. The transport
    supplies two callbacks — ``emit_hop`` (a continuation leaves this
    host) and ``emit_report`` (a control message for the controller) —
    and feeds commands in through :meth:`~WorkerCore.handle`.

:class:`Supervisor`
    The resilient controller's bookkeeping: the per-host
    :class:`~repro.resilience.recovery.ReplayLedger`, committed
    checkpoint states, checkpoint marks (journal truncation points),
    and the respawn budget.

:func:`hop_fault_verdict`
    One shared interpretation of message faults at the wire layer, so a
    fault plan's drop/duplicate/delay specs mean the same thing on a
    multiprocessing queue and on a TCP frame.

The command vocabulary between controller and worker is also shared
(``register`` / ``load`` / ``signal0`` / ``run`` / ``ckpt`` /
``restore`` / ``collect`` / ``stop``), which is what lets the journal
and checkpoint machinery replay identically over either transport.
"""

from __future__ import annotations

from collections import defaultdict, deque

from ..errors import (ConfigurationError, FabricError, MigrationError,
                      ResilienceError)
from ..machine.presets import SUN_BLADE_100
from ..navp import ir
from ..navp.interp import Interp
from ..navp.kernels import get_kernel
from ..navp.messenger import Messenger
from ..resilience.faults import FaultPlan
from ..resilience.faults import ambient as ambient_faults
from ..resilience.recovery import RecoveryPolicy, ReplayLedger
from .hosts import host_count, resolve_hosts
from .trace import TraceLog

__all__ = [
    "ControllerFabric",
    "CreditGate",
    "WorkerCore",
    "Supervisor",
    "hop_fault_verdict",
    "freeze_task",
    "thaw_task",
    "reap_workers",
]


def reap_workers(procs, grace_s: float = 5.0) -> None:
    """Make every worker process exit, whatever state it is in.

    Escalates politely: a shared ``grace_s`` join window (the stop
    command may still be draining), then ``terminate`` (SIGTERM), then
    ``SIGKILL`` for workers wedged past signals (e.g. blocked in a
    long credit wait). Never raises — teardown runs on exception paths
    and must not mask the error that triggered it. Used by every
    fabric/pool that forks workers, so a failed or rejected run cannot
    leave orphaned processes behind.
    """
    import os
    import signal as signal_mod
    import time as time_mod

    procs = [p for p in procs if p is not None]
    deadline = time_mod.monotonic() + grace_s
    for p in procs:
        try:
            p.join(timeout=max(0.0, deadline - time_mod.monotonic()))
        except (OSError, ValueError):  # pragma: no cover - already gone
            continue
    stragglers = [p for p in procs if p.is_alive()]
    for p in stragglers:
        try:
            p.terminate()
        except (OSError, ValueError):  # pragma: no cover
            pass
    for p in stragglers:
        p.join(timeout=2.0)
        if p.is_alive() and p.pid is not None:
            try:
                os.kill(p.pid, signal_mod.SIGKILL)
            except OSError:  # pragma: no cover - raced its exit
                pass
            p.join(timeout=2.0)

# Field offsets of a worker task record (see WorkerCore.execute).
_ID, _CHILDREN, _SEQ, _AT, _INTERP, _HOPS = range(6)


def freeze_task(task: list) -> tuple:
    return (task[_ID], task[_CHILDREN], task[_SEQ], task[_AT],
            task[_INTERP].agent_snapshot(), task[_HOPS])


def thaw_task(snap) -> list:
    return [snap[0], snap[1], snap[2], tuple(snap[3]),
            Interp.from_snapshot(snap[4]), snap[5]]


class WorkerCore:
    """One host's execution engine, independent of the transport.

    Executes messenger continuations against the local state of every
    logical node the host carries. A task is the list
    ``[id, children, seq, at, interp, hops]``; the hop payload is the
    same thing as a tuple (with the interpreter reduced to its
    snapshot) — positional records pickle without re-shipping invariant
    key strings on every migration.

    With ``dedup=True`` arrivals are deduplicated by
    ``(messenger id, hop count)`` so at-least-once transports (journal
    replay, duplicated frames) yield exactly-once execution, and the
    core answers ``ckpt`` / ``restore`` commands — both handled between
    tasks, so a state snapshot never splits a continuation.
    """

    __slots__ = ("host", "host_of", "node_vars", "event_counts",
                 "event_waiters", "ready", "seen", "dedup",
                 "emit_hop", "emit_report")

    def __init__(self, host, coords, host_of, emit_hop, emit_report,
                 dedup: bool = False):
        self.host = host
        self.host_of = host_of
        self.node_vars: dict = {coord: {} for coord in coords}
        self.event_counts: dict = defaultdict(int)  # (coord, name, args)
        self.event_waiters: dict = defaultdict(deque)
        self.ready: deque = deque()
        self.seen: set = set()          # delivered (mid, hops) keys
        self.dedup = dedup
        self.emit_hop = emit_hop        # (dst_host, payload) -> None
        self.emit_report = emit_report  # (msg tuple) -> None

    # -- execution -----------------------------------------------------
    def step(self) -> None:
        self.execute(self.ready.popleft())

    def execute(self, task: list) -> None:
        node_vars = self.node_vars
        interp: Interp = task[_INTERP]
        while True:
            action = interp.next_action(node_vars[task[_AT]])
            if action is None:
                self.emit_report(("done", task[_ID], task[_CHILDREN]))
                return
            kind = action[0]
            if kind == "hop":
                dst = tuple(action[1])
                if dst not in self.host_of:
                    raise MigrationError(
                        f"hop target {dst!r} is not a PE of this fabric"
                    )
                if self.host_of[dst] == self.host:
                    task[_AT] = dst    # co-hosted: a local hand-over
                    continue
                payload = (
                    task[_ID], task[_CHILDREN], task[_SEQ], dst,
                    interp.agent_snapshot(), task[_HOPS] + 1,
                )
                self.emit_hop(self.host_of[dst], payload)
                return
            if kind == "compute":
                _, kname, argvals, out, _cost_kind = action
                interp.env[out] = get_kernel(kname).fn(*argvals)
                continue
            if kind == "wait":
                key = (task[_AT], action[1], action[2])
                if self.event_counts[key] > 0:
                    self.event_counts[key] -= 1
                    continue
                self.event_waiters[key].append(task)
                return
            if kind == "signal":
                key = (task[_AT], action[1], action[2])
                remaining = action[3]
                waiters = self.event_waiters[key]
                while remaining > 0 and waiters:
                    self.ready.append(waiters.popleft())
                    remaining -= 1
                self.event_counts[key] += remaining
                continue
            if kind == "inject":
                child_id = f"{task[_ID]}/{task[_SEQ]}"
                task[_SEQ] += 1
                task[_CHILDREN].append(child_id)
                self.ready.append([child_id, [], 0, task[_AT],
                                   Interp(action[1], action[2]), 0])
                continue
            raise FabricError(f"unsupported action {action!r} on "
                              f"a distributed fabric")

    # -- command protocol ----------------------------------------------
    def handle(self, cmd) -> str | None:
        """Apply one controller command; returns ``"stop"`` to exit."""
        op = cmd[0]
        if op == "run":
            payload = cmd[1]
            if self.dedup:
                key = (payload[0], payload[5])
                if key in self.seen:
                    return None  # replayed delivery, already processed
                self.seen.add(key)
            self.ready.append(thaw_task(payload))
        elif op == "register":
            for program in cmd[1]:
                ir.register_program(program, replace=True)
        elif op == "load":
            self.node_vars[cmd[1]].update(cmd[2])
        elif op == "signal0":
            coord, name, args, count = cmd[1]
            self.event_counts[(coord, name, args)] += count
        elif op == "ckpt":
            # quiescent here: `ready` drained before the command was
            # read, so the cut never splits a continuation
            state = (
                self.node_vars,
                dict(self.event_counts),
                [(key, [freeze_task(t) for t in waiters])
                 for key, waiters in self.event_waiters.items() if waiters],
                [freeze_task(t) for t in self.ready],
                list(self.seen),
            )
            self.emit_report(("ckpt", self.host, cmd[1], state))
        elif op == "restore":
            vars_in, counts_in, waiters_in, ready_in, seen_in = cmd[1]
            for coord, values in vars_in.items():
                self.node_vars[coord] = dict(values)
            self.event_counts.clear()
            self.event_counts.update(counts_in)
            self.event_waiters.clear()
            for key, frozen in waiters_in:
                self.event_waiters[key].extend(
                    thaw_task(s) for s in frozen)
            self.ready.extend(thaw_task(s) for s in ready_in)
            self.seen.update(seen_in)
        elif op == "collect":
            self.emit_report(("vars", self.host, self.node_vars))
        elif op == "stop":
            return "stop"
        else:  # pragma: no cover - protocol is closed
            raise FabricError(f"unknown worker command {op!r}")
        return None


class CreditGate:
    """Per-destination credit window with hop coalescing.

    At most ``window`` un-credited ``run`` deliveries may be in flight
    toward each destination; excess queues here. Whenever the window
    has room, queued hops drain up to ``coalesce`` at a time through
    one ``emit(dst, batch)`` call — the transport ships the batch as a
    *single* frame, so fine-grained algorithmic-block traffic stops
    paying per-frame header + syscall costs. One credit is still owed
    per hop (the receiver unpacks a batch into individual mailbox
    entries and pays each back separately), so the receiver-side
    mailbox bound is unchanged: never more than ``window`` queued hops.

    Coalescing is a send-time decision over queue contents, never a
    payload rewrite; the resilient controller journals hops
    individually *before* pushing them here, so a respawned worker's
    replay re-drains the same queue and re-coalesces the same frames
    deterministically.
    """

    __slots__ = ("window", "coalesce", "emit", "outstanding", "pending")

    def __init__(self, window: int, coalesce: int, emit):
        self.window = window
        self.coalesce = max(1, coalesce)
        self.emit = emit                       # (dst, [payload, ...])
        self.outstanding: dict = defaultdict(int)
        self.pending: dict = defaultdict(deque)

    def push(self, dst, payload, flush: bool = True) -> None:
        """Queue one hop payload toward ``dst`` (drains immediately
        unless ``flush=False`` — used to batch a whole replay)."""
        self.pending[dst].append(payload)
        if flush:
            self.pump(dst)

    def credit(self, dst) -> None:
        """The receiver retired one hop from its mailbox."""
        if self.outstanding[dst] > 0:
            self.outstanding[dst] -= 1
        self.pump(dst)

    def reset(self, dst) -> None:
        """Forget in-flight state for a respawned destination (every
        queued payload is already in the journal)."""
        self.outstanding[dst] = 0
        self.pending[dst].clear()

    def pump(self, dst) -> None:
        """Drain the queue in coalesced batches while credits last."""
        pend = self.pending[dst]
        out = self.outstanding
        while pend and out[dst] < self.window:
            batch = []
            while (pend and out[dst] < self.window
                   and len(batch) < self.coalesce):
                batch.append(pend.popleft())
                out[dst] += 1
            self.emit(dst, batch)


class Supervisor:
    """Resilient-controller bookkeeping, independent of the transport.

    Owns the replay journal, the last committed checkpoint state per
    host, the checkpoint marks (how much journal a committed checkpoint
    retires), and the respawn budget. The controller loop stays in the
    fabric — it is transport-specific — but every decision about *what*
    to replay and *whether* a respawn is allowed lives here.
    """

    __slots__ = ("ledger", "recovery", "max_restarts", "restarts",
                 "ckpt_state", "_ckpt_marks", "_ckpt_seq",
                 "forwards_since_ckpt")

    def __init__(self, recovery: RecoveryPolicy, max_restarts: int):
        self.ledger = ReplayLedger()
        self.recovery = recovery
        self.max_restarts = max_restarts
        self.restarts: dict = defaultdict(int)   # host -> respawn count
        self.ckpt_state: dict = {}               # host -> committed state
        self._ckpt_marks: dict = {}              # ckpt id -> {host: length}
        self._ckpt_seq = 0
        self.forwards_since_ckpt = 0

    def journal(self, host, cmd) -> None:
        self.ledger.append(host, cmd)

    def note_forward(self) -> None:
        self.forwards_since_ckpt += 1

    def begin_checkpoint(self, hosts) -> int:
        """Open a coordinated checkpoint; returns its id. The caller
        sends the ``("ckpt", id)`` marker to every host."""
        self._ckpt_seq += 1
        self._ckpt_marks[self._ckpt_seq] = {
            h: len(self.ledger.entries(h)) for h in hosts}
        self.forwards_since_ckpt = 0
        return self._ckpt_seq

    def commit_checkpoint(self, host, ckpt_id, state) -> None:
        """A host answered a marker: keep its state, retire the journal
        entries the checkpoint now covers."""
        self.ckpt_state[host] = state
        marks = self._ckpt_marks.get(ckpt_id)
        if marks is not None and host in marks:
            self.ledger.truncate(host, marks.pop(host))

    def authorize_respawn(self, host) -> int:
        """Check policy and budget; returns the restart ordinal."""
        if not self.recovery.enabled:
            raise ResilienceError(
                f"worker {host} died and recovery is disabled")
        if self.restarts[host] >= self.max_restarts:
            raise ResilienceError(
                f"worker {host} exhausted its respawn budget "
                f"({self.max_restarts})")
        self.restarts[host] += 1
        return self.restarts[host]

    def recovery_script(self, host) -> tuple:
        """``(checkpoint_state_or_None, journal_commands)`` to feed a
        freshly respawned worker, in order."""
        return self.ckpt_state.get(host), self.ledger.entries(host)


def hop_fault_verdict(runtime, dst_host, recovery_enabled: bool):
    """Interpret the fault plan for one controller-forwarded hop frame.

    Returns ``(verdict, spec)`` with verdict one of:

    ``"deliver"``     no fault (spec is None)
    ``"lost"``        dropped, recovery disabled — the continuation in
                      the frame was the only copy
    ``"retransmit"``  dropped but masked by retransmission
    ``"duplicate"``   delivered twice (receiver-side dedup masks it)
    ``"delay"``       delivered after ``spec.seconds`` (capped by the
                      caller)

    Counting happens in the runtime's per-spec matchers, so the same
    plan fires at the same frames on every transport.
    """
    runtime.note_hop()
    spec = runtime.message_action("hop", -1, dst_host) \
        if runtime.plan.message_faults else None
    if spec is None:
        return "deliver", None
    if spec.action == "drop":
        return ("retransmit" if recovery_enabled else "lost"), spec
    if spec.action == "duplicate":
        return "duplicate", spec
    return "delay", spec


class ControllerFabric:
    """Setup-side base class of the process and socket fabrics.

    Collects loads, initial signals, and injected IR programs until
    :meth:`run`; resolves fault-spec places to worker hosts; and owns
    the one capability check both fabrics need: only IR messengers may
    be injected, because these fabrics ship continuations between
    address spaces on every hop and a live generator frame cannot be
    pickled.
    """

    def __init__(
        self,
        topology,
        machine=None,
        timeout: float = 120.0,
        hosts=None,
        faults: FaultPlan | None = None,
        recovery=True,
        checkpoint_every: int | None = None,
        max_restarts: int = 2,
        supervise: bool | None = None,
        trace: bool = False,
    ):
        self.topology = topology
        self.machine = machine if machine is not None else SUN_BLADE_100
        self.timeout = timeout
        self.trace = TraceLog(enabled=trace)
        self._host_of = resolve_hosts(topology, hosts)
        self.n_hosts = host_count(self._host_of)
        self._loads: dict = defaultdict(dict)
        self._signals: list = []
        self._initial: list = []  # (coord, program_name, env)
        self._programs: dict = {}
        self._counter = 0
        if faults is None:
            faults, ambient_recovery = ambient_faults()
            if faults is not None:
                recovery = ambient_recovery
        self._plan = faults if faults is not None else FaultPlan()
        self._recovery = RecoveryPolicy.coerce(recovery)
        self._checkpoint_every = checkpoint_every
        self._max_restarts = max_restarts
        self.resilient = bool(self._plan) or bool(supervise) or (
            checkpoint_every is not None)
        self._sup = Supervisor(self._recovery, max_restarts)

    @property
    def restarts(self) -> dict:
        """Respawn count per worker host (populated by resilient runs)."""
        return self._sup.restarts

    def _resolve_host(self, spec_place):
        """Fault-spec places name worker *hosts* on this fabric (an
        index, or a PE coordinate mapped to its host)."""
        if isinstance(spec_place, int):
            return spec_place if 0 <= spec_place < self.n_hosts else None
        try:
            coord = self.topology.normalize(tuple(spec_place))
        except Exception:
            return None
        return self._host_of.get(coord)

    # -- setup (collected, applied at run()) ---------------------------
    def load(self, coord, **node_vars) -> None:
        self._loads[self.topology.normalize(coord)].update(node_vars)

    def signal_initial(self, coord, name: str, *args, count: int = 1) -> None:
        self._signals.append(
            (self.topology.normalize(coord), name, tuple(args), count))

    def inject(self, coord, program: str | ir.Program,
               env: dict | None = None) -> None:
        """Schedule an IR program for injection at start-up.

        Accepts a program name, an :class:`~repro.navp.ir.Program`, or
        an :class:`~repro.navp.interp.IRMessenger` (whose continuation
        must be at the start). Plain generator messengers are rejected:
        their state lives in an unpicklable generator frame, and this
        fabric ships state between address spaces on every hop.
        """
        if isinstance(program, Messenger):
            interp = getattr(program, "interp", None)
            if interp is None:
                raise ConfigurationError(
                    f"the {self.kind} fabric runs IR messengers only — "
                    f"{type(program).__name__} is a generator messenger "
                    f"whose state cannot be pickled across processes; "
                    f"use SimFabric/ThreadFabric, or express the program "
                    f"in the navigational IR")
            if env is not None:
                raise ConfigurationError(
                    "env is implied by the IRMessenger; do not pass both")
            env = dict(interp.env)
            program = interp.program
        if isinstance(program, ir.Program):
            self._programs[program.name] = program
            name = program.name
        else:
            name = program
            self._programs[name] = ir.get_program(name)
        self._collect_referenced(self._programs[name])
        self._initial.append(
            (self.topology.normalize(coord), name, dict(env or {})))

    def _collect_referenced(self, program: ir.Program) -> None:
        """Pull in programs reachable through Inject statements."""

        def walk(body):
            for stmt in body:
                if isinstance(stmt, ir.InjectStmt):
                    if stmt.program not in self._programs:
                        child = ir.get_program(stmt.program)
                        self._programs[stmt.program] = child
                        walk(child.body)
                elif isinstance(stmt, ir.For):
                    walk(stmt.body)
                elif isinstance(stmt, ir.If):
                    walk(stmt.then)
                    walk(stmt.orelse)

        walk(program.body)

    def _mc_hint(self, window: int | None = None) -> str:
        """Model-checker verdict suffix for a DeadlockError message.

        ``self._programs`` already holds the exact injection closure
        this run shipped to the workers, so the post-mortem checks what
        actually ran — not whatever the global registry holds now.
        Returns ``""`` when there is nothing useful to say; never
        raises (the hint must not mask the deadlock it annotates).
        """
        try:
            from ..analysis.protocol_mc import runtime_deadlock_hint
            roots = [(name, coord, env)
                     for coord, name, env in self._initial]
            hint = runtime_deadlock_hint(roots, self._signals,
                                         registry=self._programs,
                                         window=window)
        except Exception:  # pragma: no cover — defensive
            hint = None
        return "\n" + hint if hint else ""

    # -- identity ------------------------------------------------------
    kind = "distributed"  # overridden: "process" / "socket"
