"""Performance harness: the pinned benchmark suite behind ``repro bench``.

The suite exists so the engine's speed is *held*, not just achieved
once: every run writes a ``BENCH_<date>.json`` snapshot (wall time,
event counts, events/sec per benchmark) and compares itself against a
previous snapshot with a configurable regression threshold. The
benchmarks are pinned — same workloads, same sizes, run after run — so
two JSONs are always comparable.

See :mod:`repro.perf.suite` for the benchmark definitions and
:mod:`repro.perf.report` for snapshot I/O and comparison; the schema is
documented in ``docs/performance.md``.
"""

from .report import (
    SCHEMA,
    compare_benches,
    find_previous,
    load_bench,
    render_report,
    write_bench,
)
from .suite import BENCHES, run_suite

__all__ = [
    "BENCHES",
    "SCHEMA",
    "compare_benches",
    "find_previous",
    "load_bench",
    "render_report",
    "run_suite",
    "write_bench",
]
