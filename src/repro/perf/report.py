"""Benchmark snapshot I/O, comparison, and the regression report.

A snapshot is a ``BENCH_<date>.json`` file::

    {
      "schema": "repro-bench/1",
      "created": "2026-08-05T12:34:56",
      "label": "post slotted-DES",
      "smoke": false,
      "python": "3.11.9",
      "results": {
        "des_micro": {"wall_s": ..., "events": ..., "events_per_sec": ...,
                      "meta": {...}},
        ...
      },
      "vs_baseline": {            # present when a previous snapshot exists
        "path": "BENCH_....json",
        "threshold": 0.85,
        "ratios": {
          "des_micro": {"events_per_sec": 1.71, "wall_speedup": 1.69},
          ...
        },
        "regressions": ["table3_shadow: wall_speedup 0.71 < 0.85"]
      }
    }

Ratios are oriented so that **bigger is better** for both metrics:
``events_per_sec`` is current/previous throughput, ``wall_speedup`` is
previous/current wall time. A benchmark regresses when its primary
metric (throughput when counted, wall speedup otherwise) falls below
the threshold.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from ..util.texttable import render_table

__all__ = [
    "SCHEMA",
    "compare_benches",
    "find_previous",
    "load_bench",
    "render_report",
    "write_bench",
]

SCHEMA = "repro-bench/1"


def make_snapshot(results: dict, label: str = "", smoke: bool = False) -> dict:
    return {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "label": label,
        "smoke": smoke,
        "python": platform.python_version(),
        "results": results,
    }


def write_bench(snapshot: dict, out_dir, date: str | None = None) -> Path:
    """Write ``BENCH_<date>.json`` under ``out_dir`` (created if needed)."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    date = date or time.strftime("%Y-%m-%d")
    path = out / f"BENCH_{date}.json"
    path.write_text(json.dumps(snapshot, indent=1, sort_keys=True) + "\n")
    return path


def load_bench(path) -> dict:
    snap = json.loads(Path(path).read_text())
    if snap.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: not a repro-bench snapshot "
            f"(schema={snap.get('schema')!r}, expected {SCHEMA!r})"
        )
    return snap


def find_previous(out_dir, exclude=None) -> Path | None:
    """Newest ``BENCH_*.json`` in ``out_dir``, preferring the dated
    snapshots over the committed pre-change baseline when both exist."""
    out = Path(out_dir)
    if not out.is_dir():
        return None
    exclude = Path(exclude).resolve() if exclude is not None else None
    candidates = [
        p for p in out.glob("BENCH_*.json")
        if exclude is None or p.resolve() != exclude
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda p: p.stat().st_mtime)


def compare_benches(current: dict, previous: dict,
                    threshold: float = 0.85) -> dict:
    """Ratio every shared benchmark; flag primary-metric regressions.

    Smoke snapshots run different sizes than full ones — comparing the
    two would report phantom regressions, so mismatched ``smoke`` flags
    yield an empty comparison with an explanatory note.
    """
    out: dict = {"threshold": threshold, "ratios": {}, "regressions": []}
    if bool(current.get("smoke")) != bool(previous.get("smoke")):
        out["note"] = (
            "smoke/full snapshots are not comparable; no ratios computed"
        )
        return out
    for name, cur in current.get("results", {}).items():
        prev = previous.get("results", {}).get(name)
        if prev is None:
            continue
        entry: dict = {}
        if cur.get("events_per_sec") and prev.get("events_per_sec"):
            entry["events_per_sec"] = (
                cur["events_per_sec"] / prev["events_per_sec"])
        if cur.get("wall_s") and prev.get("wall_s"):
            entry["wall_speedup"] = prev["wall_s"] / cur["wall_s"]
        if not entry:
            continue
        out["ratios"][name] = entry
        primary = ("events_per_sec" if "events_per_sec" in entry
                   else "wall_speedup")
        if entry[primary] < threshold:
            out["regressions"].append(
                f"{name}: {primary} {entry[primary]:.2f} < {threshold:.2f}"
            )
    return out


def render_report(snapshot: dict) -> str:
    """Human-readable view of a snapshot and its baseline comparison."""
    rows = []
    comparison = snapshot.get("vs_baseline") or {}
    ratios = comparison.get("ratios", {})
    for name, res in snapshot.get("results", {}).items():
        ratio = ratios.get(name, {})
        rows.append([
            name,
            res.get("wall_s"),
            res.get("events"),
            res.get("events_per_sec"),
            ratio.get("events_per_sec"),
            ratio.get("wall_speedup"),
        ])
    headers = ["benchmark", "wall s", "events", "events/s",
               "x ev/s", "x wall"]
    title = "repro bench"
    if snapshot.get("label"):
        title += f" — {snapshot['label']}"
    if snapshot.get("smoke"):
        title += " (smoke)"
    lines = [render_table(headers, rows, title=title)]
    if comparison:
        against = comparison.get("against", "")
        lines.append(f"\ncompared against: {against}")
        if comparison.get("note"):
            lines.append(f"note: {comparison['note']}")
        regressions = comparison.get("regressions", [])
        if regressions:
            lines.append("REGRESSIONS (threshold "
                         f"{comparison.get('threshold')}):")
            lines.extend(f"  {r}" for r in regressions)
        else:
            lines.append(
                f"no regressions at threshold {comparison.get('threshold')}")
    return "\n".join(lines)
