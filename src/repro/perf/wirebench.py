"""Wire-level data-plane benchmarks (and their legacy baselines).

Three measurable costs of shipping a hop, isolated from the fabric
scheduling machinery:

* :func:`payload_roundtrip` — serialize + deserialize an agent
  snapshot whose bulk is matrix blocks;
* :func:`socket_throughput` — frames/sec and bytes/sec through a real
  ``127.0.0.1`` TCP socket pair at a given payload size;
* :func:`coalescing_microbench` — the same hop stream shipped one
  frame per hop versus ``coalesce`` hops per frame.

Each runner takes a ``mode``:

``"zero_copy"``
    the current data plane — :mod:`repro.fabric.payload` out-of-band
    buffers over :class:`repro.fabric.wire.FrameSocket`'s
    scatter/gather send and ``recv_into`` receive;
``"legacy"``
    the pre-data-plane algorithms, preserved here so the committed
    ``BENCH_*_prechange.json`` baseline stays reproducible: whole-graph
    in-band pickling, a header+payload join copy per send, and a
    bytes-concatenation receive buffer.

The :mod:`repro.perf.suite` entries pin the zero-copy mode; the legacy
mode exists only for ``benchmarks/record_dataplane_baseline.py`` and
for regression tests that assert the improvement ratio.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import time

import numpy as np

from ..fabric import payload as payload_mod
from ..fabric.wire import FRAME_RUN, FrameSocket

__all__ = [
    "payload_roundtrip",
    "socket_throughput",
    "coalescing_microbench",
]


# --------------------------------------------------------------------------
# legacy (pre-data-plane) transport, kept for baseline reproducibility
# --------------------------------------------------------------------------

_LEGACY_HEADER = struct.Struct("!4sBBHdI")  # the VERSION-1 frame header
_LEGACY_MAGIC = b"NAVP"


class _LegacySocket:
    """The old single-buffer frame socket: every send joins header and
    payload into one byte string, every receive grows a ``bytes``
    buffer by concatenation and slices frames (copies) out of it."""

    def __init__(self, sock: socket.socket):
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self.sock = sock
        self._buf = b""

    def send(self, payload: bytes) -> int:
        data = _LEGACY_HEADER.pack(
            _LEGACY_MAGIC, 1, FRAME_RUN, 0, 0.0, len(payload)) + payload
        self.sock.sendall(data)
        return len(data)

    def _read_exact(self, n: int) -> bytes:
        while len(self._buf) < n:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("peer closed")
            self._buf += chunk
        out, self._buf = self._buf[:n], self._buf[n:]
        return out

    def recv(self) -> bytes:
        header = self._read_exact(_LEGACY_HEADER.size)
        *_ignored, length = _LEGACY_HEADER.unpack(header)
        return self._read_exact(length)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def _tcp_pair():
    """A connected pair of real TCP sockets over 127.0.0.1."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    client = socket.create_connection(listener.getsockname())
    server, _ = listener.accept()
    listener.close()
    return client, server


# --------------------------------------------------------------------------
# 1. payload round-trip
# --------------------------------------------------------------------------

def _block_snapshot(order: int):
    """An agent-snapshot-shaped payload whose bulk is matrix blocks:
    two owned ``order x order`` float64 blocks plus a contiguous
    row-band view (the codec must ship the view's bytes only)."""
    a = np.arange(order * order, dtype=np.float64).reshape(order, order)
    b = np.ones((order, order), dtype=np.float64)
    return (
        "__bench_block__",
        {"A": a, "B": b, "band": a[: max(order // 8, 1)], "k": 7},
        [("For", 3, order), ("Hop", 1)],
    )


def payload_roundtrip(reps: int, order: int = 256,
                      mode: str = "zero_copy") -> dict:
    """Encode + decode the block snapshot ``reps`` times."""
    snap = _block_snapshot(order)
    if mode == "zero_copy":
        frame, buffers = payload_mod.encode(snap)
        nbytes = payload_mod.nbytes(frame, buffers)
        t0 = time.perf_counter()
        for _ in range(reps):
            frame, buffers = payload_mod.encode(snap)
            payload_mod.decode(frame, buffers)
        wall = time.perf_counter() - t0
    elif mode == "legacy":
        blob = pickle.dumps(snap, protocol=pickle.HIGHEST_PROTOCOL)
        nbytes = len(blob)
        t0 = time.perf_counter()
        for _ in range(reps):
            blob = pickle.dumps(snap, protocol=pickle.HIGHEST_PROTOCOL)
            pickle.loads(blob)
        wall = time.perf_counter() - t0
    else:
        raise ValueError(f"unknown mode {mode!r}")
    return {
        "wall_s": wall,
        "roundtrips": reps,
        "roundtrips_per_sec": reps / wall,
        "snapshot_bytes": nbytes,
        "mode": mode,
    }


# --------------------------------------------------------------------------
# 2. socket-pair throughput
# --------------------------------------------------------------------------

def _forked_producer(client, produce):
    """Run ``produce`` in a forked child owning the client socket —
    the fabric's workers are separate processes, so the bench keeps
    sender and receiver out of each other's GIL. Returns the pid."""
    pid = os.fork()
    if pid == 0:  # pragma: no cover - child exits before coverage dump
        try:
            produce()
        finally:
            os._exit(0)
    client.close()
    return pid


def socket_throughput(payload_bytes: int, frames: int,
                      mode: str = "zero_copy") -> dict:
    """Ship ``frames`` hop-shaped payloads of ``payload_bytes`` of
    block data through a 127.0.0.1 TCP pair — sender in a forked
    child, receiver here, like the fabric's worker processes. Wall
    time covers encode + send + receive + decode."""
    arr = np.arange(max(payload_bytes // 8, 1), dtype=np.float64)
    obj = ("run", [("m0", [], 0, 0, ("__p__", {"A": arr}, []), 0)])
    client, server = _tcp_pair()
    received = 0

    if mode == "zero_copy":
        def produce():
            out = FrameSocket(client)
            for _ in range(frames):
                frame, buffers = payload_mod.encode(obj)
                out.send(FRAME_RUN, frame, buffers=buffers)
    elif mode == "legacy":
        def produce():
            out = _LegacySocket(client)
            for _ in range(frames):
                out.send(pickle.dumps(
                    obj, protocol=pickle.HIGHEST_PROTOCOL))
    else:
        raise ValueError(f"unknown mode {mode!r}")

    pid = _forked_producer(client, produce)
    t0 = time.perf_counter()
    if mode == "zero_copy":
        inp = FrameSocket(server)
        for _ in range(frames):
            frame = inp.recv()
            payload_mod.decode(frame.payload, frame.buffers)
            received += 1
    else:
        inp = _LegacySocket(server)
        for _ in range(frames):
            pickle.loads(inp.recv())
            received += 1
    wall = time.perf_counter() - t0
    os.waitpid(pid, 0)
    server.close()
    assert received == frames
    total = frames * arr.nbytes
    return {
        "wall_s": wall,
        "frames": frames,
        "payload_bytes": payload_bytes,
        "frames_per_sec": frames / wall,
        "bytes_per_sec": total / wall,
        "mode": mode,
    }


# --------------------------------------------------------------------------
# 3. coalescing microbenchmark
# --------------------------------------------------------------------------

def coalescing_microbench(hops: int, coalesce: int = 8,
                          hop_bytes: int = 2048,
                          mode: str = "coalesced") -> dict:
    """Ship ``hops`` small hop payloads through a TCP pair either one
    frame per hop (``mode="uncoalesced"``) or ``coalesce`` hops per
    frame (``mode="coalesced"``); the receiver decodes and unrolls
    every batch into individual hops, exactly like the fabric's
    mailbox path."""
    if mode == "coalesced":
        batch_size = coalesce
    elif mode == "uncoalesced":
        batch_size = 1
    else:
        raise ValueError(f"unknown mode {mode!r}")
    # distinct arrays per hop: pickle memoizes repeated objects, so a
    # shared block would make batched frames unrealistically small
    elems = max(hop_bytes // 8, 1)
    tasks = [
        (f"m{i}", [], 0, 0,
         ("__p__", {"a": np.full(elems, float(i))}, []), 0)
        for i in range(hops)
    ]
    batches = [tasks[i:i + batch_size]
               for i in range(0, hops, batch_size)]
    client, server = _tcp_pair()

    def produce():
        out = FrameSocket(client)
        for batch in batches:
            frame, buffers = payload_mod.encode(batch)
            out.send(FRAME_RUN, frame, buffers=buffers)

    pid = _forked_producer(client, produce)
    inp = FrameSocket(server)
    unrolled = 0
    t0 = time.perf_counter()
    for _ in range(len(batches)):
        frame = inp.recv()
        for _hop in payload_mod.decode(frame.payload, frame.buffers):
            unrolled += 1
    wall = time.perf_counter() - t0
    os.waitpid(pid, 0)
    server.close()
    assert unrolled == hops
    return {
        "wall_s": wall,
        "hops": hops,
        "frames": len(batches),
        "hops_per_sec": hops / wall,
        "mode": mode,
    }
