"""The pinned benchmark suite.

Each benchmark is a function ``fn(smoke: bool) -> dict`` registered in
:data:`BENCHES`. The returned dict always carries ``wall_s``,
``events`` (workload-specific unit: DES events, interpreter statements,
pickle round-trips — or None when the workload cannot count), and
``events_per_sec``; anything the benchmark wants to pin for later
inspection goes under ``meta``.

The workloads are deliberately frozen: changing a size or a loop shape
makes every historical ``BENCH_*.json`` incomparable. Add new
benchmarks instead of editing existing ones.

Suite members
-------------
``des_micro``          the DES kernel alone: timeouts, a contended
                       resource, and a semaphore handshake
``table1_shadow``      the full Table 1 shadow-mode sweep (1-D NavP +
                       ScaLAPACK, six matrix orders)
``table3_shadow``      the full Table 3 shadow-mode sweep (2-D NavP,
                       MPI Gentleman, SUMMA — the headline number)
``interp_throughput``  navigational-IR statement dispatch, no fabric
``pickle_roundtrip``   the hop payload: snapshot -> pickle -> restore
``payload_roundtrip``  a *block-heavy* snapshot through the zero-copy
                       codec (out-of-band buffers, no array copies)
``wire_throughput``    multi-buffer frames through a real 127.0.0.1
                       TCP pair at three payload sizes
``wire_coalescing``    the same hop stream coalesced 8-per-frame
                       versus one frame per hop
``serve_throughput``   jobs through a warm serve pool versus per-job
                       socket-fabric setup (the amortization claim)
``serve_durability``   concurrent submits through the fsync'd
                       write-ahead ledger versus in-memory admission
                       (the group-commit overhead bound)
"""

from __future__ import annotations

import pickle
import time

__all__ = ["BENCHES", "run_suite"]

BENCHES: dict = {}


def _bench(name: str):
    def deco(fn):
        BENCHES[name] = fn
        return fn
    return deco


def _sim_events(sim) -> int:
    """Events a finished Simulator executed (works across engine versions)."""
    return getattr(sim, "events_executed", None) or sim._seq


def _fabric_event_delta():
    """Snapshot the global DES event counter (None on old engines)."""
    from ..fabric import desim
    stats = getattr(desim, "PERF_STATS", None)
    return stats["events"] if stats is not None else None


# --------------------------------------------------------------------------
# 1. DES microbenchmark
# --------------------------------------------------------------------------

@_bench("des_micro")
def bench_des_micro(smoke: bool = False) -> dict:
    """The simulation kernel alone, no fabric or machine model.

    200 processes x 200 steps (60x60 under --smoke): every step is a
    spread-out timeout, a pass through a capacity-4 resource, and a
    producer/consumer semaphore handshake — the same primitive mix the
    EP/EC protocols of Figures 13/15 generate.
    """
    from ..fabric.desim import Simulator, Timeout

    procs, steps = (60, 60) if smoke else (200, 200)
    sim = Simulator()
    res = sim.resource(4, name="cpu")
    sem = sim.semaphore(0, name="ep")

    def worker(i):
        for s in range(steps):
            yield Timeout(0.001 * ((i + s) % 7))
            yield res.acquire()
            yield Timeout(0.0005)
            res.release()
            if i % 2 == 0:
                sem.release()
            else:
                yield sem.acquire()

    for i in range(procs):
        sim.spawn(worker(i))
    t0 = time.perf_counter()
    end = sim.run()
    wall = time.perf_counter() - t0
    events = _sim_events(sim)
    return {
        "wall_s": wall,
        "events": events,
        "events_per_sec": events / wall,
        "meta": {"procs": procs, "steps": steps, "virtual_end": end},
    }


# --------------------------------------------------------------------------
# 2/3. Table shadow-mode sweeps
# --------------------------------------------------------------------------

def _bench_table(builder, smoke_orders, smoke: bool) -> dict:
    before = _fabric_event_delta()
    t0 = time.perf_counter()
    comparison = builder(orders=smoke_orders if smoke else None)
    wall = time.perf_counter() - t0
    after = _fabric_event_delta()
    events = (after - before) if before is not None else None
    cells = sum(len(row.cells) for row in comparison.rows)
    return {
        "wall_s": wall,
        "events": events,
        "events_per_sec": events / wall if events else None,
        "meta": {"cells": cells, "rows": len(comparison.rows)},
    }


@_bench("table1_shadow")
def bench_table1_shadow(smoke: bool = False) -> dict:
    """Table 1 (1-D variants, 3 PEs) rebuilt end to end in shadow mode."""
    from ..perfmodel.tables import build_table1
    return _bench_table(build_table1, (1536,), smoke)


@_bench("table3_shadow")
def bench_table3_shadow(smoke: bool = False) -> dict:
    """Table 3 (2-D variants, 3x3 grid) rebuilt end to end in shadow
    mode — the sweep whose wall time is the optimization headline."""
    from ..perfmodel.tables import build_table3
    return _bench_table(build_table3, (1024,), smoke)


# --------------------------------------------------------------------------
# 4. Interpreter throughput
# --------------------------------------------------------------------------

_INTERP_LOOP = 400          # iterations of the benchmark program's For
_INTERP_STMTS_PER_ITER = 5  # For bookkeeping + Assign + If + branch + Signal


def _interp_program():
    """A pinned IR program mixing free statements and signal actions."""
    from ..navp import ir

    body = (
        ir.For("i", ir.Const(_INTERP_LOOP), (
            ir.Assign("t", ir.Bin("+", ir.Bin("*", ir.Var("i"),
                                              ir.Const(3)), ir.Const(1))),
            ir.If(ir.Bin("==", ir.Bin("%", ir.Var("i"), ir.Const(2)),
                         ir.Const(0)),
                  then=(ir.NodeSet("acc",
                                   (ir.Bin("%", ir.Var("i"), ir.Const(8)),),
                                   ir.Var("t")),),
                  orelse=(ir.Assign("u", ir.Bin("+", ir.Var("t"),
                                                ir.Var("i"))),)),
            ir.SignalStmt("EP", (ir.Var("i"),)),
        )),
    )
    return ir.register_program(
        ir.Program("__bench_interp__", body=body), replace=True)


@_bench("interp_throughput")
def bench_interp_throughput(smoke: bool = False) -> dict:
    """Drive :meth:`Interp.next_action` through the pinned program,
    consuming signal actions inline — pure statement dispatch, no DES."""
    from ..navp.interp import Interp

    _interp_program()
    reps = 20 if smoke else 120
    t0 = time.perf_counter()
    actions = 0
    for _ in range(reps):
        interp = Interp("__bench_interp__")
        node_vars: dict = {}
        while interp.next_action(node_vars) is not None:
            actions += 1
    wall = time.perf_counter() - t0
    statements = reps * _INTERP_LOOP * _INTERP_STMTS_PER_ITER
    return {
        "wall_s": wall,
        "events": statements,
        "events_per_sec": statements / wall,
        "meta": {"reps": reps, "actions": actions},
    }


# --------------------------------------------------------------------------
# 5. Hop-payload pickle round-trip
# --------------------------------------------------------------------------

def _migration_program():
    from ..navp import ir

    body = (
        ir.For("mi", ir.Const(64), (
            ir.For("mk", ir.Const(8), (
                ir.Assign("t", ir.Bin("+", ir.Var("mi"), ir.Var("mk"))),
                ir.HopStmt((ir.Bin("%", ir.Var("t"), ir.Const(4)),)),
            )),
        )),
    )
    return ir.register_program(
        ir.Program("__bench_hop__", body=body), replace=True)


@_bench("pickle_roundtrip")
def bench_pickle_roundtrip(smoke: bool = False) -> dict:
    """What every ProcessFabric hop pays: snapshot the continuation,
    pickle it, unpickle it, rebuild the interpreter."""
    from ..navp.interp import Interp

    _migration_program()
    reps = 300 if smoke else 3000
    interp = Interp("__bench_hop__", {
        "n": 64, "row": 3, "col": 5, "payload": list(range(32)),
    })
    action = interp.next_action({})  # park mid-loop, stack depth 3
    assert action is not None and action[0] == "hop"
    t0 = time.perf_counter()
    nbytes = 0
    for _ in range(reps):
        blob = pickle.dumps(interp.agent_snapshot(),
                            protocol=pickle.HIGHEST_PROTOCOL)
        nbytes = len(blob)
        Interp.from_snapshot(pickle.loads(blob))
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "events": reps,
        "events_per_sec": reps / wall,
        "meta": {"snapshot_bytes": nbytes},
    }


# --------------------------------------------------------------------------
# 6/7/8. Data-plane benchmarks (zero-copy codec + wire)
# --------------------------------------------------------------------------

# Pinned workload shapes; the legacy-mode twins of these runs are
# recorded by benchmarks/record_dataplane_baseline.py.
_PAYLOAD_ORDER = 256
_WIRE_SIZES = ((4096, 300), (65536, 150), (1 << 20, 40))
_WIRE_SIZES_SMOKE = ((4096, 80), (65536, 40), (1 << 20, 10))
_COALESCE_HOPS, _COALESCE_HOPS_SMOKE = 1600, 400
_COALESCE_BATCH = 8


@_bench("payload_roundtrip")
def bench_payload_roundtrip(smoke: bool = False) -> dict:
    """The large-block hop payload through the zero-copy codec: two
    owned 256x256 float64 blocks plus a band view, encode + decode."""
    from .wirebench import payload_roundtrip

    reps = 60 if smoke else 600
    res = payload_roundtrip(reps, order=_PAYLOAD_ORDER)
    return {
        "wall_s": res["wall_s"],
        "events": reps,
        "events_per_sec": res["roundtrips_per_sec"],
        "meta": {"order": _PAYLOAD_ORDER,
                 "snapshot_bytes": res["snapshot_bytes"]},
    }


@_bench("wire_throughput")
def bench_wire_throughput(smoke: bool = False) -> dict:
    """Block payloads through a real 127.0.0.1 TCP pair at three
    payload sizes; ``events`` are *bytes* so ``events_per_sec`` is the
    aggregate wire bandwidth including encode and decode."""
    from .wirebench import socket_throughput

    sizes = _WIRE_SIZES_SMOKE if smoke else _WIRE_SIZES
    wall = 0.0
    total = 0
    per_size: dict = {}
    for payload_bytes, frames in sizes:
        res = socket_throughput(payload_bytes, frames)
        wall += res["wall_s"]
        total += payload_bytes * frames
        per_size[str(payload_bytes)] = {
            "frames_per_sec": res["frames_per_sec"],
            "bytes_per_sec": res["bytes_per_sec"],
        }
    return {
        "wall_s": wall,
        "events": total,
        "events_per_sec": total / wall,
        "meta": {"per_size": per_size,
                 "sizes": [list(s) for s in sizes]},
    }


@_bench("wire_coalescing")
def bench_wire_coalescing(smoke: bool = False) -> dict:
    """2-KiB hops through a TCP pair, 8 per frame; ``meta`` pins the
    uncoalesced twin run so the frame-count reduction and speedup are
    part of the snapshot."""
    from .wirebench import coalescing_microbench

    hops = _COALESCE_HOPS_SMOKE if smoke else _COALESCE_HOPS
    res = coalescing_microbench(hops, coalesce=_COALESCE_BATCH,
                                mode="coalesced")
    solo = coalescing_microbench(hops, coalesce=_COALESCE_BATCH,
                                 mode="uncoalesced")
    return {
        "wall_s": res["wall_s"],
        "events": hops,
        "events_per_sec": res["hops_per_sec"],
        "meta": {
            "coalesce": _COALESCE_BATCH,
            "frames_coalesced": res["frames"],
            "frames_uncoalesced": solo["frames"],
            "frame_reduction": solo["frames"] / res["frames"],
            "uncoalesced_hops_per_sec": solo["hops_per_sec"],
            "speedup_vs_uncoalesced":
                res["hops_per_sec"] / solo["hops_per_sec"],
        },
    }


# --------------------------------------------------------------------------
# 9. Serve-mode throughput
# --------------------------------------------------------------------------

_SERVE_JOBS, _SERVE_JOBS_SMOKE = (24, 4), (10, 2)   # (warm, per-job)


@_bench("serve_throughput")
def bench_serve_throughput(smoke: bool = False) -> dict:
    """Submissions through one warm daemon versus cold socket-fabric
    runs of the same g=2 workload; ``events`` are warm jobs completed,
    and ``meta`` pins the amortized speedup and the breakeven point."""
    from .servebench import serve_vs_perjob

    warm, perjob = _SERVE_JOBS_SMOKE if smoke else _SERVE_JOBS
    res = serve_vs_perjob(warm, perjob, pool_size=3 if smoke else 4)
    return {
        "wall_s": res["warm_wall_s"],
        "events": warm,
        "events_per_sec": warm / res["warm_wall_s"],
        "meta": {
            "pool_size": res["pool_size"],
            "setup_s": res["setup_s"],
            "warm_per_job_s": res["warm_per_job_s"],
            "perjob_per_job_s": res["perjob_per_job_s"],
            "speedup_vs_perjob": res["speedup_vs_perjob"],
            "breakeven_jobs": res["breakeven_jobs"],
        },
    }


_DURABILITY_JOBS, _DURABILITY_JOBS_SMOKE = 96, 24


@_bench("serve_durability")
def bench_serve_durability(smoke: bool = False) -> dict:
    """Concurrent submits with the fsync'd ledger versus in-memory
    admission on the identical path; ``events`` are durable submits
    acknowledged, and ``meta`` pins the per-submit overhead and the
    group-commit evidence (fsyncs < appends under concurrency)."""
    from .servebench import serve_durability

    jobs = _DURABILITY_JOBS_SMOKE if smoke else _DURABILITY_JOBS
    res = serve_durability(jobs, threads=4 if smoke else 8)
    return {
        "wall_s": res["durable_wall_s"],
        "events": res["jobs"],
        "events_per_sec": res["durable_submits_per_sec"],
        "meta": {
            "threads": res["threads"],
            "memory_submits_per_sec": res["memory_submits_per_sec"],
            "overhead_per_submit_ms": res["overhead_per_submit_ms"],
            "ledger_appends": res["ledger"]["appends"],
            "ledger_fsyncs": res["ledger"]["fsyncs"],
            "group_committed": res["ledger"]["group_committed"],
        },
    }


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------

def run_suite(smoke: bool = False, only=None, repeats: int = 3) -> dict:
    """Run the pinned suite; returns ``{name: result_dict}``.

    ``only`` restricts to a subset of benchmark names (unknown names
    raise KeyError so typos fail loudly rather than silently skipping).

    Each benchmark runs ``repeats`` times and keeps the fastest run —
    the workload is deterministic, so the minimum wall time is the
    least-interference measurement and the one worth pinning.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    names = list(BENCHES) if not only else list(only)
    results: dict = {}
    for name in names:
        best = None
        for _ in range(repeats):
            res = BENCHES[name](smoke)
            if best is None or res["wall_s"] < best["wall_s"]:
                best = res
        results[name] = best
    return results
