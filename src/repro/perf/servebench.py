"""Serve-mode throughput: a warm pool versus per-job fabric setup.

The serve daemon's economic argument is amortization: spawn the worker
processes once, then every submission pays only admission, leasing and
the job's own hops — while ``repro run --fabric socket`` pays process
spawn, TCP accept and teardown *per run*. This benchmark measures both
sides on the same workload (the Figure 11 DSC program, g=2, tiny
blocks) so the snapshot pins the amortized speedup, not just a wall
time.

Used by the pinned ``serve_throughput`` suite entry
(:mod:`repro.perf.suite`) and runnable standalone::

    PYTHONPATH=src python -m repro.perf.servebench
"""

from __future__ import annotations

import time

__all__ = ["serve_vs_perjob"]

#: The pinned workload shape shared by both sides of the comparison.
_PROGRAM = "navp-2d-dsc"
_G = 2
_AB = 4
_WORKERS = 2


def serve_vs_perjob(warm_jobs: int, perjob_runs: int,
                    pool_size: int = 3) -> dict:
    """Run ``warm_jobs`` submissions through one warm daemon and
    ``perjob_runs`` cold socket-fabric runs of the same workload.

    Returns per-job wall times for both sides plus the daemon's setup
    cost, so callers can see both the amortized win and how many jobs
    pay off the pool spawn.
    """
    from ..matmul import run_ir2d_suite
    from ..serve import ServeClient, ServeService, build_job_suite

    # -- warm side: one pool, many jobs --------------------------------
    t0 = time.perf_counter()
    service = ServeService(pool_size=pool_size, mc_admission=False,
                           max_depth=max(2 * warm_jobs, 64),
                           tenant_cap=max(2 * warm_jobs, 64))
    addr = service.start()
    setup_s = time.perf_counter() - t0
    try:
        with ServeClient(addr) as client:
            t0 = time.perf_counter()
            jids = [client.submit(_PROGRAM, g=_G, seed=i, ab=_AB,
                                  workers=_WORKERS,
                                  tenant=("even" if i % 2 else "odd"))
                    for i in range(warm_jobs)]
            for jid in jids:
                record = client.wait(jid, timeout=120.0)
                if record["state"] != "completed":   # pragma: no cover
                    raise RuntimeError(f"bench job failed: {record}")
            warm_wall = time.perf_counter() - t0
    finally:
        service.shutdown(drain=False)

    # -- cold side: a fresh socket fabric per job ----------------------
    t0 = time.perf_counter()
    for i in range(perjob_runs):
        suite, _a, _b = build_job_suite(_PROGRAM, _G, seed=i, ab=_AB)
        run_ir2d_suite(suite, "socket")
    perjob_wall = time.perf_counter() - t0

    warm_per_job = warm_wall / warm_jobs
    perjob_per_job = perjob_wall / perjob_runs
    return {
        "warm_jobs": warm_jobs,
        "perjob_runs": perjob_runs,
        "pool_size": pool_size,
        "setup_s": setup_s,
        "warm_wall_s": warm_wall,
        "perjob_wall_s": perjob_wall,
        "warm_per_job_s": warm_per_job,
        "perjob_per_job_s": perjob_per_job,
        "speedup_vs_perjob": perjob_per_job / warm_per_job,
        # jobs needed before the pool spawn pays for itself
        "breakeven_jobs": setup_s / max(perjob_per_job - warm_per_job,
                                        1e-9),
    }


if __name__ == "__main__":   # pragma: no cover - manual profiling aid
    import json
    print(json.dumps(serve_vs_perjob(24, 4, pool_size=4), indent=2))
