"""Serve-mode throughput: a warm pool versus per-job fabric setup.

The serve daemon's economic argument is amortization: spawn the worker
processes once, then every submission pays only admission, leasing and
the job's own hops — while ``repro run --fabric socket`` pays process
spawn, TCP accept and teardown *per run*. This benchmark measures both
sides on the same workload (the Figure 11 DSC program, g=2, tiny
blocks) so the snapshot pins the amortized speedup, not just a wall
time.

Used by the pinned ``serve_throughput`` suite entry
(:mod:`repro.perf.suite`) and runnable standalone::

    PYTHONPATH=src python -m repro.perf.servebench
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time

__all__ = ["serve_vs_perjob", "serve_durability"]

#: The pinned workload shape shared by both sides of the comparison.
_PROGRAM = "navp-2d-dsc"
_G = 2
_AB = 4
_WORKERS = 2


def serve_vs_perjob(warm_jobs: int, perjob_runs: int,
                    pool_size: int = 3) -> dict:
    """Run ``warm_jobs`` submissions through one warm daemon and
    ``perjob_runs`` cold socket-fabric runs of the same workload.

    Returns per-job wall times for both sides plus the daemon's setup
    cost, so callers can see both the amortized win and how many jobs
    pay off the pool spawn.
    """
    from ..matmul import run_ir2d_suite
    from ..serve import ServeClient, ServeService, build_job_suite

    # -- warm side: one pool, many jobs --------------------------------
    t0 = time.perf_counter()
    service = ServeService(pool_size=pool_size, mc_admission=False,
                           max_depth=max(2 * warm_jobs, 64),
                           tenant_cap=max(2 * warm_jobs, 64))
    addr = service.start()
    setup_s = time.perf_counter() - t0
    try:
        with ServeClient(addr) as client:
            t0 = time.perf_counter()
            jids = [client.submit(_PROGRAM, g=_G, seed=i, ab=_AB,
                                  workers=_WORKERS,
                                  tenant=("even" if i % 2 else "odd"))
                    for i in range(warm_jobs)]
            for jid in jids:
                record = client.wait(jid, timeout=120.0)
                if record["state"] != "completed":   # pragma: no cover
                    raise RuntimeError(f"bench job failed: {record}")
            warm_wall = time.perf_counter() - t0
    finally:
        service.shutdown(drain=False)

    # -- cold side: a fresh socket fabric per job ----------------------
    t0 = time.perf_counter()
    for i in range(perjob_runs):
        suite, _a, _b = build_job_suite(_PROGRAM, _G, seed=i, ab=_AB)
        run_ir2d_suite(suite, "socket")
    perjob_wall = time.perf_counter() - t0

    warm_per_job = warm_wall / warm_jobs
    perjob_per_job = perjob_wall / perjob_runs
    return {
        "warm_jobs": warm_jobs,
        "perjob_runs": perjob_runs,
        "pool_size": pool_size,
        "setup_s": setup_s,
        "warm_wall_s": warm_wall,
        "perjob_wall_s": perjob_wall,
        "warm_per_job_s": warm_per_job,
        "perjob_per_job_s": perjob_per_job,
        "speedup_vs_perjob": perjob_per_job / warm_per_job,
        # jobs needed before the pool spawn pays for itself
        "breakeven_jobs": setup_s / max(perjob_per_job - warm_per_job,
                                        1e-9),
    }


class _IdlePool:
    """Pool stand-in for pure control-plane benchmarks: admission only
    reads the pool's size, and with no dispatcher thread running the
    admitted jobs just accumulate in the queue — so the measured wall
    is submit-path cost, not job execution."""

    workers = {0: None}


def _admission_only_service(jobs: int, state_dir: str | None):
    from ..serve import ServeService
    from ..serve.ledger import JobLedger

    service = ServeService(mc_admission=False, max_depth=4 * jobs,
                           tenant_cap=4 * jobs)
    service.pool = _IdlePool()
    if state_dir is not None:
        service.state_dir = state_dir
        service.ledger = JobLedger(os.path.join(state_dir, "wal"))
        service.ledger.open()
    return service


def serve_durability(jobs: int, threads: int = 8) -> dict:
    """Submit latency with the fsync'd write-ahead ledger versus pure
    in-memory admission, on the identical code path.

    ``threads`` concurrent submitters drive the same admission path
    twice — once durable (every admit write-ahead logged + fsync'd),
    once in-memory — so the delta isolates what durability costs per
    acknowledged job and the ledger stats show group commit at work
    (concurrent appends sharing fsyncs keeps the overhead bounded as
    submitters multiply).
    """
    per_thread = max(1, jobs // threads)
    total = per_thread * threads

    def drive(service) -> float:
        barrier = threading.Barrier(threads + 1)

        def submitter(tid: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                service.submit({"program": _PROGRAM, "g": _G, "ab": _AB,
                                "seed": tid * per_thread + i, "workers": 1,
                                "tenant": f"t{tid}",
                                "key": f"bench-{tid}-{i}"})

        workers = [threading.Thread(target=submitter, args=(tid,))
                   for tid in range(threads)]
        for w in workers:
            w.start()
        barrier.wait()
        t0 = time.perf_counter()
        for w in workers:
            w.join()
        return time.perf_counter() - t0

    state_dir = tempfile.mkdtemp(prefix="repro-servebench-")
    try:
        durable = _admission_only_service(total, state_dir)
        durable_wall = drive(durable)
        ledger_stats = durable.ledger.stats()
        durable.ledger.close()
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)

    memory = _admission_only_service(total, None)
    memory_wall = drive(memory)

    return {
        "jobs": total,
        "threads": threads,
        "durable_wall_s": durable_wall,
        "memory_wall_s": memory_wall,
        "durable_submits_per_sec": total / durable_wall,
        "memory_submits_per_sec": total / memory_wall,
        "overhead_per_submit_ms": (durable_wall - memory_wall) / total
        * 1e3,
        "ledger": ledger_stats,
    }


if __name__ == "__main__":   # pragma: no cover - manual profiling aid
    import json
    print(json.dumps(serve_vs_perjob(24, 4, pool_size=4), indent=2))
    print(json.dumps(serve_durability(96), indent=2))
