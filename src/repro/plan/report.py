"""Rendering a :class:`~repro.plan.planner.Plan` for humans and tools.

:func:`render_plan` produces the ``repro plan`` console report — the
chosen sequence, the rejected candidates with their reasons, the
per-stage analytic predictions and communication profiles, and the
validation verdict. :func:`plan_to_dict` produces the JSON form the
golden-plan tests pin down. :func:`render_ir` pretty-prints the
emitted navigational IR (``--emit-ir``).
"""

from __future__ import annotations

from ..analysis import visitor
from ..navp import ir
from .planner import Plan

__all__ = ["render_plan", "plan_to_dict", "render_ir"]


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.2f}ms"


def render_ir(program: ir.Program, indent: str = "  ") -> str:
    """An indented statement listing of one program."""
    lines = [f"program {program.name}"
             f"({', '.join(program.params)}):"]

    def emit(body, depth: int) -> None:
        pad = indent * depth
        for stmt in body:
            if isinstance(stmt, ir.For):
                lines.append(f"{pad}for {stmt.var} in "
                             f"range({stmt.count!r}):")
                emit(stmt.body, depth + 1)
            elif isinstance(stmt, ir.If):
                lines.append(f"{pad}if {stmt.cond!r}:")
                emit(stmt.then, depth + 1)
                if stmt.orelse:
                    lines.append(f"{pad}else:")
                    emit(stmt.orelse, depth + 1)
            elif isinstance(stmt, ir.Assign):
                lines.append(f"{pad}{stmt.var} = {stmt.expr!r}")
            elif isinstance(stmt, ir.ComputeStmt):
                args = ", ".join(repr(a) for a in stmt.args)
                lines.append(f"{pad}{stmt.out} = "
                             f"{stmt.kernel}({args})")
            elif isinstance(stmt, ir.NodeSet):
                lines.append(f"{pad}{stmt.name}{list(stmt.idx)!r} = "
                             f"{stmt.expr!r}")
            elif isinstance(stmt, ir.HopStmt):
                lines.append(f"{pad}hop(node{list(stmt.place)!r})")
            elif isinstance(stmt, ir.InjectStmt):
                binds = ", ".join(f"{v}={e!r}" for v, e in stmt.bindings)
                lines.append(f"{pad}inject({stmt.program}, {binds})")
            elif isinstance(stmt, ir.WaitStmt):
                lines.append(f"{pad}wait({stmt.event}"
                             f"{list(stmt.args)!r})")
            elif isinstance(stmt, ir.SignalStmt):
                lines.append(f"{pad}signal({stmt.event}"
                             f"{list(stmt.args)!r})")
            else:  # extension statements: fall back to their repr
                lines.append(f"{pad}{stmt!r}")

    emit(program.body, 1)
    return "\n".join(lines)


def render_plan(plan: Plan, emit_ir: bool = False) -> str:
    lines = [
        f"plan for {plan.target} on {plan.machine}",
        f"  geometry: {plan.geometry} PEs, n={plan.n}, "
        f"block order {plan.ab}",
        f"  sequence: sequential -> {' -> '.join(plan.sequence)}",
        "",
    ]
    for stage in plan.stages:
        prof = stage.profile
        lines.append(f"stage {stage.name}: predicted "
                     f"{_fmt_s(stage.predicted_s)}")
        lines.append(f"  emits: {', '.join(stage.programs)}")
        lines.append(f"  why:   {stage.chosen}")
        lines.append(
            f"  comm:  {prof.hops} hops, {prof.injects} injections, "
            f"{prof.waits} waits/{prof.signals} signals, "
            f"{stage.comm_bytes / 1e6:.2f} MB moved; "
            f"{prof.kernel_calls} kernel calls")
        rejected = [c for c in stage.candidates if not c.viable]
        for cand in rejected:
            lines.append(f"  rejected {cand.transform}({cand.subject}): "
                         f"{cand.detail}")
        lines.append("")
    lines.append(f"predicted speedup over sequential: "
                 f"{plan.speedup:.2f}x on {plan.geometry} PEs")
    val = plan.validation
    if val.get("ran"):
        verdict = ("bit-identical to the sequential program"
                   if val.get("bit_identical")
                   else "OUTPUT MISMATCH against the sequential program")
        lines.append(
            f"validation ({val.get('fabric')}): race-free; {verdict}")
        if val.get("protocol_mc") == "VERIFIED":
            lines.append(
                f"protocol: statically verified deadlock-free "
                f"({val.get('protocol_mc_states')} states explored, "
                f"mailbox peak {val.get('protocol_mc_max_mailbox_depth')}"
                f" <= window {val.get('protocol_mc_window')})")
    else:
        lines.append("validation: skipped (--no-validate)")
    if emit_ir:
        lines.append("")
        for name in plan.final_stage.programs:
            lines.append(render_ir(ir.get_program(name)))
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _path_json(path: tuple) -> list:
    return [list(step) if isinstance(step, tuple) else step
            for step in path]


def plan_to_dict(plan: Plan) -> dict:
    """The JSON form pinned by the golden-plan tests."""
    return {
        "target": plan.target,
        "kind": plan.kind,
        "machine": plan.machine,
        "geometry": plan.geometry,
        "n": plan.n,
        "ab": plan.ab,
        "sequence": list(plan.sequence),
        "stages": [
            {
                "name": s.name,
                "programs": list(s.programs),
                "chosen": s.chosen,
                "predicted_s": round(s.predicted_s, 6),
                "comm": {**s.profile.as_dict(),
                         "bytes": s.comm_bytes},
                "candidates": [
                    {
                        "transform": c.transform,
                        "subject": c.subject,
                        "viable": c.viable,
                        "detail": c.detail,
                    }
                    for c in s.candidates
                ],
            }
            for s in plan.stages
        ],
        "validation": plan.validation,
    }
