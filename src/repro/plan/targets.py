"""What the planner can plan: the paper's two case-study programs.

A target names a sequential starting program plus the geometry
parameters the paper's tables use. Keeping this a small registry —
rather than auto-discovering arbitrary programs — is deliberate: the
planner's *decisions* are general (they only consult the analyses),
but scoring needs to know the problem shape (matrix order, block
order) that each IR block entry stands for, and validation needs the
matching data layout builders.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PlanTarget", "TARGETS"]


@dataclass(frozen=True)
class PlanTarget:
    """One plannable program family.

    kind:
        ``"matmul-1d"`` (Figure 2 and its 1-D chain) or
        ``"wavefront"`` (the longest-common-subsequence lattice).
    geometry:
        Default PE count (``nb`` for matmul at the paper's fine
        granularity N == P; ``p`` for the wavefront).
    n / ab:
        Problem order and algorithmic block order used for scoring
        (matmul: Table 1's smallest unpaged run). For the wavefront
        ``n`` is the lattice order and ``ab`` the block order ``b``.
    """

    name: str
    kind: str
    geometry: int
    n: int
    ab: int
    description: str


TARGETS = {
    "navp-matmul": PlanTarget(
        name="navp-matmul",
        kind="matmul-1d",
        geometry=3,
        n=1536,
        ab=512,
        description="Figure 2 block matmul -> the 1-D chain "
                    "(DSC, pipelining, phase shifting)",
    ),
    "navp-wavefront": PlanTarget(
        name="navp-wavefront",
        kind="wavefront",
        geometry=4,
        n=32,
        ab=8,
        description="LCS wavefront -> keyed (R6) pipelining of the "
                    "row sweeps",
    ),
}
