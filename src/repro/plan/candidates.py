"""Candidate transformation steps and why each lives or dies.

The planner does not hard-code the paper's choices; it proposes every
syntactically possible step and lets the static analyses veto. Each
proposal comes back as a :class:`Candidate` carrying its decision
trail, so the report can show not just the chosen plan but the
rejected alternatives and their reasons — the part of Section 3 the
paper narrates in prose ("the j-loop is chosen because ...").

* :func:`dsc_candidates` proposes distributing each loop of the
  program. A loop survives when every node write inside it is keyed by
  its variable (the written data has a home under the distribution)
  and every read *not* keyed by it can be legally carried: the read's
  key must be invariant during the tour, and the carried node variable
  must be read-only inside the loop
  (:func:`~repro.transform.deps.check_carries_read_only`).
* :func:`pipeline_candidates` proposes splitting the single outer loop
  into concurrent carriers. Plain pipelining needs the affine engine
  to prove the iterations independent; when it instead solves a
  carried flow dependence with an exact positive distance, the keyed
  (wait/signal) variant is proposed — the wavefront's R6 schedule.
* :func:`phase_candidates` proposes the two staggering schedules for
  phase shifting and scores them by their communication-phase count
  (:func:`~repro.matmul.staggering.phases_for_scheme`): reverse
  staggering routes any order in 2 phases, forward needs 3 whenever a
  shift cycle is odd — the paper's reason for choosing reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import visitor
from ..analysis.summary import summarize, summarize_body
from ..errors import TransformError
from ..matmul.staggering import phases_for_scheme
from ..navp import ir
from ..transform.deps import (
    check_carries_read_only,
    check_forward_carried,
    check_loop_independent,
)
from ..transform.dsc import DSCSpec

__all__ = ["Candidate", "dsc_candidates", "pipeline_candidates",
           "phase_candidates"]

V = ir.Var
C = ir.Const


@dataclass(frozen=True)
class Candidate:
    """One proposed transformation step with its decision trail."""

    transform: str            # dsc | pipeline | keyed-pipeline | phase-shift
    subject: str              # loop variable or schedule name
    viable: bool
    detail: str               # why it lives / why it died
    spec: object = None       # the transform spec when viable
    score: float | None = None  # lower is better, within one stage
    extras: dict = field(default_factory=dict)


def _key_repr(var: str, key: tuple) -> str:
    return f"{var}[{', '.join(repr(e) for e in key)}]"


def dsc_candidates(program: ir.Program) -> list:
    """Propose DSC along every loop of ``program``."""
    all_writes = [acc for s in summarize(program)
                  for acc in s.node_writes]
    out: list = []
    for path, loop in visitor.walk_stmts(program.body):
        if not isinstance(loop, ir.For):
            continue
        v = loop.var
        summaries = summarize_body(loop.body, base_path=path)
        bound_inside = {v}
        for s in summaries:
            bound_inside |= s.agent_defs

        reasons: list = []
        # a distribution loop must cover the program's writes: output
        # written outside the tour ends up wherever the thread happens
        # to stand, i.e. not distributed at all
        for w in all_writes:
            if w.path[:len(path)] != path:
                reasons.append(
                    f"write {_key_repr(w.var, w.raw_key)} happens "
                    f"outside the {v!r} loop; a {v!r}-distribution "
                    f"would leave the product unplaced")
        writes = [acc for s in summaries for acc in s.node_writes]
        reads = [acc for s in summaries for acc in s.node_reads]
        for w in writes:
            if not any(visitor.uses_var(e, v) for e in w.raw_key):
                reasons.append(
                    f"write {_key_repr(w.var, w.raw_key)} is not keyed "
                    f"by {v!r}: the written data has no home under a "
                    f"{v!r}-distribution")
        carries: dict = {}
        for r in reads:
            if any(visitor.uses_var(e, v) for e in r.raw_key):
                continue  # stationary under the distribution
            key_vars = set()
            for e in r.raw_key:
                key_vars |= visitor.var_names(e)
            inside = key_vars & bound_inside
            if inside:
                reasons.append(
                    f"read {_key_repr(r.var, r.raw_key)} is not keyed "
                    f"by {v!r} and its key varies inside the tour "
                    f"(depends on {sorted(inside)!r}); it cannot be "
                    f"picked up once and carried")
                continue
            carries.setdefault(f"m{r.var}",
                               ir.NodeGet(r.var, tuple(r.raw_key)))
        if not reasons:
            spec = DSCSpec(
                loop=v,
                place=(V(v),),
                carries=carries,
                pickup_cond=(ir.Bin("==", V(v), C(0)) if carries
                             else C(True)),
            )
            try:
                check_carries_read_only(
                    program, v, [src.name for src in carries.values()])
            except TransformError as exc:
                reasons.append(str(exc))
            else:
                carried = ", ".join(
                    f"{agent} = {_key_repr(src.name, src.idx)}"
                    for agent, src in carries.items()) or "nothing"
                out.append(Candidate(
                    "dsc", v, True,
                    f"distribute along {v!r} (hop to node({v})); "
                    f"carry {carried}",
                    spec=spec))
                continue
        out.append(Candidate("dsc", v, False, "; ".join(reasons)))
    return out


def pipeline_candidates(program: ir.Program) -> list:
    """Propose pipelining the program's single outer loop."""
    if len(program.body) != 1 or not isinstance(program.body[0], ir.For):
        return [Candidate(
            "pipeline", "-", False,
            "program is not a single outer loop; nothing to pipeline")]
    v = program.body[0].var
    try:
        check_loop_independent(program, v)
    except TransformError as plain_exc:
        try:
            forward = check_forward_carried(program, v)
        except TransformError as keyed_exc:
            return [
                Candidate("pipeline", v, False, str(plain_exc)),
                Candidate("keyed-pipeline", v, False, str(keyed_exc)),
            ]
        dists = ", ".join(
            f"{dep.var!r} at {dep.vector.describe()}" for dep in forward)
        return [
            Candidate("pipeline", v, False, str(plain_exc)),
            Candidate(
                "keyed-pipeline", v, True,
                f"every carried dependence is a forward flow "
                f"dependence ({dists}); a keyed wait/signal handshake "
                f"(the R6 shape) orders reader behind writer",
                extras={"forward": forward}),
        ]
    return [Candidate(
        "pipeline", v, True,
        f"iterations of {v!r} are provably independent; one carrier "
        f"per iteration, injected in order")]


def phase_candidates(nb: int, outer: str, tour: str) -> list:
    """Propose both staggering schedules for the phase shift."""
    out: list = []
    for scheme in ("reverse", "forward"):
        if scheme == "reverse":
            # node((nb-1 - outer + tour) % nb)
            inner = ir.Bin("+", ir.Bin("-", C(nb - 1), V(outer)), V(tour))
        else:
            # node((outer + tour) % nb)
            inner = ir.Bin("+", V(outer), V(tour))
        schedule = ir.Bin("%", inner, C(nb))
        phases = phases_for_scheme(nb, scheme)
        out.append(Candidate(
            "phase-shift", scheme, True,
            f"{scheme} staggering of the initial data redistribution "
            f"routes every row in {phases} communication phase(s)",
            spec=schedule, score=float(phases),
            extras={"phases": phases}))
    out.sort(key=lambda c: c.score)
    return out
