"""The automatic transformation planner (``repro plan``).

The paper derives its parallel programs by hand: a programmer stares
at the sequential code, picks a distribution loop, checks the
dependences, and applies DSC, then pipelining, then phase shifting
(Sections 3.1–3.4). Everything that decision procedure consults now
exists in this repo as a static analysis — affine dependence vectors,
transformation legality gates, a communication profile and an analytic
performance model. This package closes the loop: given a *target*
(:mod:`repro.plan.targets`) and a machine preset, the planner
(:mod:`repro.plan.planner`) enumerates candidate transformation steps
(:mod:`repro.plan.candidates`), keeps the ones the gates legalize,
scores them (:mod:`repro.plan.cost`), validates the winning chain by
running it (race detector + SimFabric golden run, bit-identical), and
emits the plan as navigational IR plus a report
(:mod:`repro.plan.report`).

On the paper's inputs it rediscovers the paper's answers: the matmul
plan is DSC over ``mj`` carrying the A row, pipelining over ``mi``,
reverse-staggered phase shifting; the wavefront plan rejects plain
pipelining (carried flow dependence, distance +1 over ``r``) and
produces the R6-keyed wait/signal schedule instead.
"""

from .candidates import Candidate, dsc_candidates, pipeline_candidates
from .cost import CommProfile, static_profile
from .planner import Plan, PlanStage, make_plan
from .report import plan_to_dict, render_plan
from .targets import TARGETS, PlanTarget

__all__ = [
    "Candidate", "dsc_candidates", "pipeline_candidates",
    "CommProfile", "static_profile",
    "Plan", "PlanStage", "make_plan",
    "plan_to_dict", "render_plan",
    "TARGETS", "PlanTarget",
]
