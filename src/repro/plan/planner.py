"""The planner proper: enumerate → gate → score → validate → emit.

:func:`make_plan` drives one target through the staged decision
procedure of Section 3, recording the full candidate trail at each
stage (see :mod:`repro.plan.candidates`). Every accepted step is
*applied* — the transformations themselves re-run their legality gates
and refuse illegal specs — so the emitted plan is a set of registered,
runnable IR programs, not a description. Unless disabled, the winner
is then validated the only way that settles it: the static race
detector must pass over the final suite's injection closure, the
protocol model checker must prove it deadlock-free with bounded
mailboxes (:mod:`repro.analysis.protocol_mc`), and a SimFabric run of
the emitted IR must reproduce the sequential program's output bit for
bit.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..errors import TransformError
from ..machine.spec import MachineSpec
from ..navp import ir
from ..transform.deps import check_race_free
from .candidates import (
    Candidate,
    dsc_candidates,
    phase_candidates,
    pipeline_candidates,
)
from .cost import CommProfile, score_stage, static_profile
from .targets import TARGETS, PlanTarget

__all__ = ["Plan", "PlanStage", "make_plan"]

V = ir.Var
C = ir.Const


@dataclass(frozen=True)
class PlanStage:
    """One accepted step of the plan, with its decision trail."""

    name: str                 # sequential | dsc | pipeline | ...
    programs: tuple           # registered program names this stage emits
    chosen: str               # summary of the accepted candidate
    candidates: tuple = ()    # full Candidate trail, accepted + rejected
    predicted_s: float = 0.0  # analytic-model span on the preset
    profile: CommProfile = field(default_factory=CommProfile)
    comm_bytes: int = 0


@dataclass(frozen=True)
class Plan:
    """The planner's output for one target on one machine preset."""

    target: str
    kind: str
    machine: str
    geometry: int
    n: int
    ab: int
    stages: tuple
    validation: dict

    @property
    def final_stage(self) -> PlanStage:
        return self.stages[-1]

    @property
    def speedup(self) -> float:
        return self.stages[0].predicted_s / self.final_stage.predicted_s

    @property
    def sequence(self) -> tuple:
        return tuple(s.name for s in self.stages[1:])


def _pick(candidates: list, transform: str) -> Candidate:
    viable = [c for c in candidates if c.viable]
    if not viable:
        raise TransformError(
            f"planner: no viable {transform} candidate; "
            + "; ".join(f"{c.subject}: {c.detail}" for c in candidates))
    return viable[0]


def _mc_gate(winner: ir.Program) -> dict:
    """Model-check the winning suite; refuse a plan that fails it.

    A plan's emitted programs are about to be handed to a fabric; the
    protocol model checker (:mod:`repro.analysis.protocol_mc`) must
    prove the winner deadlock-free with bounded mailboxes *before*
    that happens. The explored-state count is recorded in the
    validation dict (and pinned by the plan goldens) as a regression
    guard on the abstraction.
    """
    from ..analysis.lint import root_entry_coord
    from ..analysis.protocol_mc import model_check

    res = model_check(winner.name, entry=root_entry_coord(winner))
    if res.status != "VERIFIED":
        detail = res.summary()
        if res.counterexample is not None:
            detail += "\n" + res.counterexample.describe()
        raise TransformError(
            f"planner: winning suite {winner.name!r} failed protocol "
            f"model checking — {detail}")
    return {
        "protocol_mc": res.status,
        "protocol_mc_states": res.stats.get("total_states"),
        "protocol_mc_transitions": res.stats.get("total_transitions"),
        "protocol_mc_max_mailbox_depth": res.max_mailbox_depth,
        "protocol_mc_window": res.window,
    }


def _stage(target: PlanTarget, name: str, programs, chosen: str,
           candidates, machine: MachineSpec, p: int,
           carried_bytes: int) -> PlanStage:
    profile = static_profile(programs[0])
    return PlanStage(
        name=name,
        programs=tuple(prog.name for prog in programs),
        chosen=chosen,
        candidates=tuple(candidates),
        predicted_s=score_stage(target.kind, name, target.n, target.ab,
                                p, machine),
        profile=profile,
        comm_bytes=profile.volume_bytes(machine, carried_bytes),
    )


# -- matmul -----------------------------------------------------------------

def _plan_matmul(target: PlanTarget, machine: MachineSpec, nb: int,
                 validate: bool) -> Plan:
    from ..transform.dsc import dsc
    from ..transform.examples import _as_navp, sequential_program
    from ..transform.phase_shift import PhaseShiftSpec, phase_shift
    from ..transform.pipeline import PipelineSpec, pipelining

    if target.n % nb != 0:
        raise TransformError(
            f"planner: geometry {nb} does not divide n={target.n}")
    # the paper's fine granularity N == P: block order follows geometry
    target = dataclasses.replace(target, ab=target.n // nb)
    # one A-row strip rides every hop of the tour
    carried = target.ab * target.n * machine.elem_size

    seq = sequential_program(nb, name=f"plan-mm-seq-{nb}")
    stages = [_stage(
        target, "sequential", [seq],
        "the Figure 2 sequential block matmul (the starting point)",
        [], machine, nb, carried)]

    # -- DSC: which loop does the distribution follow? --------------------
    cands = dsc_candidates(seq)
    best = _pick(cands, "dsc")
    dsc_prog = dsc(seq, best.spec)
    dsc_prog = ir.register_program(
        ir.Program(dsc_prog.name, _as_navp(dsc_prog.body),
                   dsc_prog.params), replace=True)
    stages.append(_stage(target, "dsc", [dsc_prog], best.detail, cands,
                         machine, nb, carried))

    # -- pipelining: split the outer loop into carriers -------------------
    pcands = pipeline_candidates(dsc_prog)
    pbest = _pick(pcands, "pipeline")
    outer = pbest.subject
    suite = pipelining(dsc_prog, PipelineSpec(
        outer=outer,
        carrier_name=f"plan-mm-rowcarrier-{nb}",
        inject_at=(C(0),),
    ))
    stages.append(_stage(target, "pipeline", [suite.main, suite.carrier],
                         pbest.detail, pcands, machine, nb, carried))

    # -- phase shifting: which staggering schedule? -----------------------
    tour = best.spec.loop
    phcands = phase_candidates(nb, outer, tour)
    phbest = _pick(phcands, "phase-shift")
    phased = phase_shift(suite, PhaseShiftSpec(
        start_place=(V(outer),),
        schedule=phbest.spec,
        tour=tour,
    ))
    stages.append(_stage(
        target, "phase-shift", [phased.main, phased.carrier],
        phbest.detail, phcands, machine, nb, carried))

    validation = {"ran": False}
    if validate:
        validation = _validate_matmul(seq, phased, nb)
    return Plan(target=target.name, kind=target.kind,
                machine=machine.name, geometry=nb,
                n=target.n, ab=target.ab,
                stages=tuple(stages), validation=validation)


def _validate_matmul(seq: ir.Program, phased, nb: int,
                     ab: int = 8, fabric: str = "sim") -> dict:
    from ..transform.examples import layout_phase, layout_sequential
    from ..transform.verify import run_stage
    from ..util.validation import random_matrix

    n = nb * ab
    a = random_matrix(n, 7)
    b = random_matrix(n, 8)
    check_race_free(phased.main)
    c_seq, _ = run_stage(seq, layout_sequential(a, b, nb), 1, nb, ab,
                         fabric=fabric)
    c_phase, _ = run_stage(phased, layout_phase(a, b, nb), nb, nb, ab,
                           fabric=fabric)
    out = {
        "ran": True,
        "fabric": fabric,
        "race_free": True,
        "bit_identical": bool(np.array_equal(c_seq, c_phase)),
        "max_abs_err_vs_numpy": float(np.max(np.abs(c_phase - a @ b))),
    }
    out.update(_mc_gate(phased.main))
    return out


# -- wavefront --------------------------------------------------------------

def _plan_wavefront(target: PlanTarget, machine: MachineSpec, p: int,
                    validate: bool) -> Plan:
    from ..transform.keyed_pipeline import KeyedPipelineSpec, keyed_pipeline
    from ..wavefront.irprog import build_wavefront_seq_ir

    nblocks = target.n // target.ab
    b = target.ab
    if target.n % p != 0:
        raise TransformError(
            f"planner: geometry {p} does not divide n={target.n}")
    # a hop hands the right edge of a block east: b elements
    carried = b * machine.elem_size

    seq = build_wavefront_seq_ir(p, nblocks, b)
    stages = [_stage(
        target, "sequential", [seq],
        "one messenger sweeps every row of blocks west to east",
        [], machine, p, carried)]

    pcands = pipeline_candidates(seq)
    pbest = _pick(pcands, "pipeline")
    if pbest.transform != "keyed-pipeline":  # pragma: no cover
        raise TransformError(
            "planner: wavefront unexpectedly has independent rows")
    suite = keyed_pipeline(seq, KeyedPipelineSpec(
        outer=pbest.subject,
        carrier_name=f"plan-wf-carrier-{p}x{nblocks}b{b}",
        inject_at=(C(0),),
    ))
    stages.append(_stage(
        target, "keyed-pipeline", [suite.main, suite.carrier],
        pbest.detail, pcands, machine, p, carried))

    validation = {"ran": False}
    if validate:
        validation = _validate_wavefront(seq, suite, p, nblocks, b)
    return Plan(target=target.name, kind=target.kind,
                machine=machine.name, geometry=p,
                n=target.n, ab=target.ab,
                stages=tuple(stages), validation=validation)


def _validate_wavefront(seq: ir.Program, suite, p: int, nblocks: int,
                        b: int, fabric: str = "sim") -> dict:
    from ..wavefront.irprog import run_wavefront_program
    from ..wavefront.problem import WavefrontCase

    check_race_free(suite.main)
    case = WavefrontCase(n=nblocks * b, b=b, seed=7)
    r_seq = run_wavefront_program(seq.name, case, p, trace=False,
                                  fabric=fabric)
    r_kp = run_wavefront_program(suite.main.name, case, p, trace=False,
                                 fabric=fabric)
    out = {
        "ran": True,
        "fabric": fabric,
        "race_free": True,
        "bit_identical": bool(np.array_equal(r_seq.d, r_kp.d)),
        "pipeline_speedup_sim": float(r_seq.time / r_kp.time),
    }
    out.update(_mc_gate(suite.main))
    return out


def make_plan(target_name: str, machine: MachineSpec,
              geometry: int | None = None,
              validate: bool = True) -> Plan:
    """Plan a target on a machine preset; see the module docstring."""
    try:
        target = TARGETS[target_name]
    except KeyError:
        raise TransformError(
            f"unknown plan target {target_name!r}; choose from "
            f"{', '.join(sorted(TARGETS))}") from None
    g = geometry if geometry is not None else target.geometry
    if target.kind == "matmul-1d":
        return _plan_matmul(target, machine, g, validate)
    if target.kind == "wavefront":
        return _plan_wavefront(target, machine, g, validate)
    raise TransformError(
        f"no planner for target kind {target.kind!r}")  # pragma: no cover
