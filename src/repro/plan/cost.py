"""Static communication/span profiles and per-stage scoring.

Two layers, deliberately separate:

* :func:`static_profile` counts, from the IR alone, how many hops,
  injections, events and kernel calls one run of a program executes —
  loop trip counts multiply through, and ``InjectStmt`` recurses into
  the injected program so a pipelined suite is profiled whole. With a
  byte cost per hop (messenger state plus carried agent data) this
  yields the plan's *communication volume*; the longest chain of
  kernel calls no concurrency can overlap is its *span*.
* :func:`score_stage` turns a stage into predicted seconds on a
  machine preset via the calibrated analytic model
  (:mod:`repro.perfmodel.analytic`) for the matmul variants, and
  matching first-order formulas for the wavefront (fill/drain plus
  dominant communication, same style).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.spec import MachineSpec
from ..navp import ir
from ..perfmodel.analytic import predict
from ..wavefront.problem import block_flops

__all__ = ["CommProfile", "static_profile", "score_stage"]


@dataclass(frozen=True)
class CommProfile:
    """Execution counts for one run, from the IR alone.

    ``exact`` is False when some loop bound was not a literal constant
    (its trip count was taken as 1).
    """

    hops: int = 0
    injects: int = 0
    waits: int = 0
    signals: int = 0
    kernel_calls: int = 0
    exact: bool = True

    def __add__(self, other: "CommProfile") -> "CommProfile":
        return CommProfile(
            self.hops + other.hops,
            self.injects + other.injects,
            self.waits + other.waits,
            self.signals + other.signals,
            self.kernel_calls + other.kernel_calls,
            self.exact and other.exact,
        )

    def volume_bytes(self, machine: MachineSpec,
                     carried_bytes: int = 0) -> int:
        """Bytes on the wire: every hop moves the messenger state plus
        its carried agent data; injections move the initial state."""
        per_hop = machine.hop_state_bytes + carried_bytes
        return self.hops * per_hop + self.injects * machine.hop_state_bytes

    def as_dict(self) -> dict:
        return {
            "hops": self.hops, "injects": self.injects,
            "waits": self.waits, "signals": self.signals,
            "kernel_calls": self.kernel_calls, "exact": self.exact,
        }


def _profile_body(body, registry, depth: int) -> CommProfile:
    total = CommProfile()
    for stmt in body:
        if isinstance(stmt, ir.For):
            count = stmt.count
            if (isinstance(count, ir.Const)
                    and isinstance(count.value, int)
                    and not isinstance(count.value, bool)):
                mult, exact = count.value, True
            else:
                mult, exact = 1, False
            inner = _profile_body(stmt.body, registry, depth)
            total += CommProfile(
                inner.hops * mult, inner.injects * mult,
                inner.waits * mult, inner.signals * mult,
                inner.kernel_calls * mult, exact and inner.exact)
        elif isinstance(stmt, ir.If):
            # take the heavier branch: an upper bound either way
            then = _profile_body(stmt.then, registry, depth)
            orelse = _profile_body(stmt.orelse, registry, depth)
            total += max(then, orelse, key=lambda p: (
                p.hops, p.kernel_calls, p.waits))
        elif isinstance(stmt, ir.HopStmt):
            total += CommProfile(hops=1)
        elif isinstance(stmt, ir.InjectStmt):
            child = registry.get(stmt.program)
            total += CommProfile(injects=1)
            if child is not None and depth < 8:
                total += _profile_body(child.body, registry, depth + 1)
        elif isinstance(stmt, ir.WaitStmt):
            total += CommProfile(waits=1)
        elif isinstance(stmt, ir.SignalStmt):
            total += CommProfile(signals=1)
        elif isinstance(stmt, ir.ComputeStmt):
            total += CommProfile(kernel_calls=1)
    return total


def static_profile(program: ir.Program, registry=None) -> CommProfile:
    """Execution counts for one run of ``program`` (inject closure)."""
    if registry is None:
        registry = ir.REGISTRY
    return _profile_body(program.body, registry, 0)


# -- per-stage seconds ------------------------------------------------------

# matmul stage name -> analytic model variant
_MATMUL_VARIANTS = {
    "sequential": "sequential",
    "dsc": "navp-1d-dsc",
    "pipeline": "navp-1d-pipeline",
    "phase-shift": "navp-1d-phase",
}


def _wf_visit(machine: MachineSpec, b: int, width: int) -> float:
    return machine.flops_time(block_flops(b, width))


def score_stage(kind: str, stage: str, n: int, ab: int, p: int,
                machine: MachineSpec) -> float:
    """Predicted seconds for one plan stage on ``machine``."""
    if kind == "matmul-1d":
        return predict(_MATMUL_VARIANTS[stage], n, ab, p, machine)
    if kind == "wavefront":
        nblocks = n // ab
        width = n // p
        visit = _wf_visit(machine, ab, width)
        # the boundary row handed east plus the messenger state
        hop = machine.network.message_time(
            machine.hop_state_bytes + ab * machine.elem_size)
        if stage == "sequential":
            return nblocks * p * visit + nblocks * p * hop
        if stage == "keyed-pipeline":
            # fill p-1 stages, then every PE streams its rows
            return (nblocks + p - 1) * visit + (p - 1) * hop
        raise ValueError(f"unknown wavefront stage {stage!r}")
    raise ValueError(f"unknown target kind {kind!r}")
