"""The paper's whole journey: incremental parallelization, stage by stage.

Reproduces the narrative of Sections 3-5 on the calibrated model of the
paper's cluster (SUN Blade 100 workstations, 100 Mb/s Ethernet): start
from sequential matrix multiplication and apply the three NavP
transformations — DSC, pipelining, phase shifting — first along one
dimension (3 PEs), then hierarchically in the second dimension
(3 x 3 PEs), comparing against Gentleman's algorithm, Cannon's
algorithm and a SUMMA (ScaLAPACK-style) baseline at the end.

Every intermediate program is runnable and an improvement over its
predecessor — that is the point of the methodology.

Run:  python examples/incremental_matmul.py [n] [ab]
"""

import sys

from repro import MatmulCase, run_variant
from repro.matmul import sequential_time_model
from repro.viz import render_spacetime


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1536
    ab = int(sys.argv[2]) if len(sys.argv) > 2 else 128
    case = MatmulCase(n=n, ab=ab, shadow=True)
    seq_time, thrash = sequential_time_model(n)
    baseline = seq_time / thrash

    print(f"matrix order n={n}, algorithmic block order ab={ab}")
    print(f"sequential: {seq_time:8.2f} s "
          f"(paging factor {thrash:.2f})\n")

    journey = [
        ("-- first dimension: a chain of 3 PEs --", None, None),
        ("stage 1: DSC             ", "navp-1d-dsc", 3),
        ("stage 2: + pipelining    ", "navp-1d-pipeline", 3),
        ("stage 3: + phase shifting", "navp-1d-phase", 3),
        ("-- second dimension: a 3 x 3 grid --", None, None),
        ("stage 4: DSC in 2nd dim  ", "navp-2d-dsc", 3),
        ("stage 5: + pipelining    ", "navp-2d-pipeline", 3),
        ("stage 6: + phase shifting", "navp-2d-phase", 3),
        ("-- classical SPMD baselines (3 x 3) --", None, None),
        ("Gentleman's algorithm    ", "mpi-gentleman", 3),
        ("Cannon's algorithm       ", "mpi-cannon", 3),
        ("SUMMA (ScaLAPACK-style)  ", "scalapack-summa", 3),
        ("naive doall              ", "doall-naive", 3),
    ]
    previous = None
    for label, variant, geometry in journey:
        if variant is None:
            print(label)
            previous = None
            continue
        result = run_variant(variant, case, geometry=geometry, trace=False)
        speedup = baseline / result.time
        delta = ""
        if previous is not None:
            delta = f"  ({previous / result.time:.2f}x over previous stage)"
        print(f"  {label} {result.time:8.2f} s  speedup {speedup:5.2f}{delta}")
        previous = result.time

    # Figure 1's space-time picture, from a real trace at fine granularity
    print("\nFigure 1(d) regenerated — phase-shifted carriers "
          "keep every PE busy:")
    small = MatmulCase(n=3 * 64, ab=64)
    result = run_variant("navp-1d-phase", small, geometry=3)
    print(render_spacetime(result.trace, 3, buckets=14))


if __name__ == "__main__":
    main()
