"""Mechanical derivation of Figures 5, 7 and 9 from Figure 2.

The paper closes with: "The NavP transformations are at least
partially automatable. Building tools to automate them is part of our
future work." This example runs that tool: the sequential loop nest of
Figure 2, written in the navigational IR, is transformed mechanically —

    Figure 2  --DSC-->  Figure 5  --pipelining-->  Figure 7
                                  --phase shift-->  Figure 9

and every stage is executed on the simulated cluster and verified
against NumPy. Each transformation is guarded by a dependence check;
the phase-shifting step is a tour reindexing by (N-1-mi+mj) mod N —
the reverse staggering.

Run:  python examples/transform_demo.py
"""

from repro.transform import derive_chain, verify_chain
from repro.viz import format_program


def show(program) -> None:
    print(format_program(program))


def main() -> None:
    nb = 3  # the paper's fine-granularity presentation: N == P == 3
    chain = derive_chain(nb)

    print("=" * 64)
    print("Figure 2 (sequential), as written:")
    show(chain.sequential)

    print("\n" + "=" * 64)
    print("Figure 5 (DSC) — derived by dsc():")
    show(chain.dsc)

    print("\n" + "=" * 64)
    print("Figure 7 (pipelined) — derived by pipelining():")
    show(chain.pipelined.main)
    show(chain.pipelined.carrier)

    print("\n" + "=" * 64)
    print("Figure 9 (phase-shifted) — derived by phase_shift():")
    show(chain.phased.main)
    show(chain.phased.carrier)

    print("\n" + "=" * 64)
    print("Figure 11 (2-D DSC) — derived by second_dim(), the "
          "hierarchical step:")
    from repro.transform import SecondDimSpec, second_dim

    suite2d = second_dim(chain.phased, SecondDimSpec(g=nb))
    show(suite2d.main)
    show(suite2d.row_carrier)
    show(suite2d.col_carrier)

    print("\n" + "=" * 64)
    print("semantic verification (every 1-D stage vs NumPy):")
    report = verify_chain(chain, ab=16)
    print(report.render())

    from repro.fabric import Grid2D, SimFabric
    from repro.navp.interp import IRMessenger
    from repro.transform import assemble_c, layout_second_dim
    from repro.util.validation import assert_allclose, random_matrix

    a = random_matrix(nb * 16, 1)
    b = random_matrix(nb * 16, 2)
    fabric = SimFabric(Grid2D(nb))
    for coord, node_vars in layout_second_dim(
            a, b, SecondDimSpec(g=nb)).items():
        fabric.load(coord, **node_vars)
    fabric.inject((0, 0), IRMessenger(suite2d.main.name))
    result = fabric.run()
    err = assert_allclose(assemble_c(result.places, nb, 16), a @ b)
    print(f"second-dimension stage      {result.time:9.4f}   {err:.2e}")
    print("all stages verified.")


if __name__ == "__main__":
    main()
