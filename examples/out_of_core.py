"""Out-of-core matrix multiplication by DSC — the Table 2 scenario.

"The immediate benefit of DSC is that, with a small amount of work, a
sequential program can efficiently solve large problems that cannot
fit in the main memory of one computer ... the DSC program removes
paging overhead by trading it against a modest amount of network
communication." (Section 2)

The paper's demonstration: N = 9216 needs ~1 GB for three
single-precision matrices, but each workstation has 256 MB. The
sequential run thrashes (36 534 s measured vs 13 921 s of pure
compute); 1-D DSC over 8 PEs keeps every PE's share in memory and runs
at 0.93x the *paging-free* sequential speed — using one migrating
thread, no parallelism at all.

Run:  python examples/out_of_core.py
"""

from repro import SUN_BLADE_100, MatmulCase, PagingModel, run_variant
from repro.machine.memory import matmul_working_set
from repro.matmul import sequential_time_model


def main() -> None:
    machine = SUN_BLADE_100
    paging = PagingModel(machine.memory)
    pes = 8

    print(f"machine: {machine.name}")
    print(f"available memory per PE: "
          f"{machine.memory.available_bytes / 2**20:.0f} MB\n")

    header = (f"{'n':>6} {'working set':>12} {'seq actual':>11} "
              f"{'seq no-paging':>13} {'DSC on 8 PEs':>12} {'DSC/no-paging':>13}")
    print(header)
    print("-" * len(header))
    for n in (4608, 6144, 9216):
        ws = matmul_working_set(n, machine.elem_size)
        seq_actual, thrash = sequential_time_model(n, machine)
        seq_free = seq_actual / thrash
        case = MatmulCase(n=n, ab=128, shadow=True)
        dsc = run_variant("navp-1d-dsc", case, geometry=pes, trace=False)
        fits = paging.fits(ws // pes)
        print(f"{n:6d} {ws / 2**20:10.0f}MB {seq_actual:11.2f} "
              f"{seq_free:13.2f} {dsc.time:12.2f} {seq_free / dsc.time:13.2f}"
              + ("" if fits else "  (!) even the share pages"))

    print("\npaper (Table 2, N=9216): sequential 36534.49 s "
          "(13921.50 s fitted), DSC 14959.42 s -> speedup 0.93")
    print("The single migrating thread trades paging for network hops;")
    print("DSC is not parallel, yet beats the thrashing sequential run "
          "by ~2.4x.")


if __name__ == "__main__":
    main()
