"""Quickstart: write and run your first self-migrating computation.

A NavP program is an ordinary Python class whose ``main()`` generator
yields navigational commands. This example builds a tiny cluster and
sends one messenger around it to compute a distributed dot product:
the vectors' chunks stay put (node variables), the running sum travels
with the messenger (an agent variable), exactly the "move the
computation to the data" principle of the paper.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Grid1D, Messenger, SimFabric, ThreadFabric


class DotProduct(Messenger):
    """Hop west-to-east, accumulating x . y chunk by chunk."""

    def __init__(self, pes: int):
        self.pes = pes       # agent variable: travels with the messenger
        self.acc = 0.0       # agent variable: the running sum

    def main(self):
        for j in range(self.pes):
            yield self.hop((j,))             # hop(node(j))
            x = self.vars["x"]               # node variables: resident data
            y = self.vars["y"]

            def partial(x=x, y=y):
                return float(x @ y)

            self.acc += yield self.compute(partial, flops=2 * len(x))
        # deliver the answer where the journey ends
        self.vars["result"] = self.acc


def run(fabric_cls, label: str) -> None:
    pes, chunk = 4, 1000
    rng = np.random.default_rng(0)
    x = rng.standard_normal(pes * chunk)
    y = rng.standard_normal(pes * chunk)

    fabric = fabric_cls(Grid1D(pes))
    for j in range(pes):
        fabric.load((j,), x=x[j * chunk : (j + 1) * chunk],
                    y=y[j * chunk : (j + 1) * chunk])
    fabric.inject((0,), DotProduct(pes))
    result = fabric.run()

    got = result.places[(pes - 1,)]["result"]
    expect = float(x @ y)
    unit = "modeled s" if label == "simulated" else "wall s"
    print(f"{label:>10}: x.y = {got:+.6f} (numpy {expect:+.6f}), "
          f"time = {result.time:.6f} {unit}")
    assert abs(got - expect) < 1e-6


if __name__ == "__main__":
    # The same messenger code runs on virtual time...
    run(SimFabric, "simulated")
    # ...and on real daemon threads (one per PE, like MESSENGERS),
    # with the agent variables pickled on every hop.
    run(ThreadFabric, "threads")
    print("quickstart OK")
