"""The methodology on a second problem: wavefront dynamic programming.

Matrix multiplication never needed synchronization in one dimension;
this example applies the same incremental steps to a problem with real
loop-carried dependences — the lattice shortest-path recurrence
D[i][j] = w[i][j] + min(D[i-1][j], D[i][j-1]) — and shows:

* DSC works unchanged (a single thread preserves program order);
* pipelining needs the events the paper warns about ("synchronization
  may be necessary"): carrier R waits for BDONE(R-1) at every PE;
* phase shifting is impossible here, and the transformation framework
  *refuses it mechanically* — carrier R's first block depends on
  carrier R-1's block at the same PE.

Run:  python examples/wavefront_pipeline.py
"""

from repro.errors import TransformError
from repro.navp import ir
from repro.transform import check_loop_independent
from repro.wavefront import (
    WavefrontCase,
    pipeline_time_model,
    run_dsc_wavefront,
    run_mpi_wavefront,
    run_pipelined_wavefront,
    run_sequential_wavefront,
)

V, Cn = ir.Var, ir.Const


def main() -> None:
    # -- correctness at small scale -------------------------------------
    case = WavefrontCase(n=32, b=4)
    reference = case.reference()
    for label, run in [
        ("sequential", lambda: run_sequential_wavefront(case)),
        ("DSC (4 PEs)", lambda: run_dsc_wavefront(case, 4)),
        ("pipelined (4 PEs)", lambda: run_pipelined_wavefront(case, 4)),
        ("MPI baseline (4 PEs)", lambda: run_mpi_wavefront(case, 4)),
    ]:
        result = run()
        import numpy as np

        assert np.allclose(result.d, reference)
        print(f"  {label:<22} verified, modeled {result.time:.4f} s")

    # -- timing at scale (shadow mode) ------------------------------------
    big = WavefrontCase(n=8192, b=128, shadow=True)
    seq = run_sequential_wavefront(big, trace=False).time
    print(f"\nn={big.n}, block {big.b} "
          f"({big.nblocks} block rows); sequential {seq:.2f} s")
    print(f"{'PEs':>4} {'DSC':>8} {'pipelined':>10} {'fill model':>11} "
          f"{'speedup':>8} {'R*p/(R+p-1)':>12}")
    r_blocks = big.nblocks
    for p in (2, 4, 8, 16):
        dsc = run_dsc_wavefront(big, p, trace=False).time
        pipe = run_pipelined_wavefront(big, p, trace=False).time
        model = pipeline_time_model(big, p)
        print(f"{p:4d} {dsc:8.2f} {pipe:10.2f} {model:11.2f} "
              f"{seq / pipe:8.2f} {r_blocks * p / (r_blocks + p - 1):12.2f}")

    # -- the mechanical refusal ---------------------------------------------
    wavefront_ir = ir.register_program(ir.Program("wavefront-demo-ir", (
        ir.For("r", Cn(8), (
            ir.For("c", Cn(8), (
                ir.ComputeStmt("copy", (
                    ir.NodeGet("D", (ir.Bin("-", V("r"), Cn(1)), V("c"))),),
                    out="up"),
                ir.NodeSet("D", (V("r"), V("c")), V("up")),
            )),
        )),
    )), replace=True)
    print("\nasking the transformation framework to pipeline the row loop:")
    try:
        check_loop_independent(wavefront_ir, "r")
    except TransformError as exc:
        print(f"  refused, as it must: {exc}")
    print("(the hand derivation adds the BDONE events instead; phase "
          "shifting stays impossible)")


if __name__ == "__main__":
    main()
