"""Moving computation to data — the argument that started NavP.

The paper's reference [13] ("Distributed sequential computing using
mobile code: moving computation to data") motivates the whole
methodology: when data is big and the computation's state is small,
migrate the computation. This example answers the same query over a
distributed dataset four ways on the calibrated 2005 cluster:

  ship-data      every PE ships its partition to one coordinator
  navp-scan x1   one messenger tours the PEs, carrying a partial (DSC)
  navp-scan x4   four messengers over disjoint ranges (pipelined DSC)
  spmd-reduce    local folds + a reduction (the SPMD answer)

All four produce the identical answer; the costs differ by orders of
magnitude, in the direction the paper predicts.

Run:  python examples/data_aggregation.py
"""

from repro.datascan import (
    DataScanCase,
    histogram,
    moments,
    run_navp_scan,
    run_ship_data,
    run_spmd_reduce,
)


def main() -> None:
    pes = 8
    query = moments()
    print(f"query: {query.name} (carried partial: "
          f"{query.partial_nbytes} bytes)\n")
    print(f"{'items/PE':>10} {'data':>8} {'ship-data':>10} "
          f"{'scan x1':>9} {'scan x4':>9} {'reduce':>8} {'ship/scan':>10}")
    for items in (50_000, 200_000, 800_000):
        case = DataScanCase(pes=pes, items_per_pe=items)
        ship = run_ship_data(case, query)
        scan1 = run_navp_scan(case, query)
        scan4 = run_navp_scan(case, query, carriers=4)
        reduce_ = run_spmd_reduce(case, query)
        answers = {r.strategy: r.answer for r in
                   (ship, scan1, scan4, reduce_)}
        first = next(iter(answers.values()))
        # merge order differs per strategy; answers agree to rounding
        assert all(abs(a["mean"] - first["mean"]) < 1e-12
                   for a in answers.values())
        mb = case.pes * items * 4 / 1e6  # model element size
        print(f"{items:10,d} {mb:6.1f}MB {ship.time:10.3f} "
              f"{scan1.time:9.3f} {scan4.time:9.3f} {reduce_.time:8.3f} "
              f"{ship.time / scan1.time:9.1f}x")

    print("\nThe migrating scan carries ~24 bytes per hop; shipping "
          "moves the dataset.")
    print("One messenger and zero parallelism already beat the "
          "ship-everything design;")
    print("splitting the tour (pipelined DSC) then closes most of the "
          "gap to full SPMD.")


if __name__ == "__main__":
    main()
