"""Why naive ``doall`` parallelization disappoints — Figure 3's lesson.

Section 3: "If we parallelize the two outer loops using the popular
doall notation, contention could happen as multiple PEs request the
same entries at the same time." Every consumer of a block must be fed
by its single owner, whose NIC serializes the copies; and with zero
inventory nothing overlaps.

This example sweeps the grid size and shows the naive scheme's
per-round owner bottleneck (2(G-1) serialized block sends) growing
with the grid while the NavP phase-shifted carriers — which move each
datum exactly once per stop and overlap everything — stay near ideal.

Run:  python examples/contention_study.py
"""

from repro import MatmulCase, run_variant
from repro.matmul import sequential_time_model


def main() -> None:
    print(f"{'grid':>6} {'n':>6} {'ideal':>8} {'doall':>8} {'eff%':>6} "
          f"{'navp-2d-phase':>14} {'eff%':>6}")
    for g, n in ((2, 1024), (3, 1536), (4, 2048), (6, 3072), (8, 4096)):
        case = MatmulCase(n=n, ab=128, shadow=True)
        seq, thrash = sequential_time_model(n)
        baseline = seq / thrash
        ideal = baseline / (g * g)
        doall = run_variant("doall-naive", case, geometry=g, trace=False)
        navp = run_variant("navp-2d-phase", case, geometry=g, trace=False)
        print(f"{g}x{g:<4} {n:6d} {ideal:8.2f} {doall.time:8.2f} "
              f"{100 * ideal / doall.time:5.0f}% {navp.time:14.2f} "
              f"{100 * ideal / navp.time:5.0f}%")
    print("\nzero-inventory doall loses ground as the grid grows; "
          "the migrating carriers do not.")


if __name__ == "__main__":
    main()
