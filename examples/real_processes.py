"""Migrating computations across real OS processes.

MESSENGERS runs a daemon per workstation and ships only computation
*state* between them. This example does the honest Python equivalent:
each PE is a ``multiprocessing.Process`` with its own address space;
a messenger's continuation (program name + control stack + agent
variables) is pickled and shipped on every ``hop()``, while node
variables never leave their process.

The program being migrated is the *phase-shifted* matmul that
``repro.transform`` derived mechanically from the sequential loop nest
— transformed code running on real processes, end to end.

Run:  python examples/real_processes.py
"""

import numpy as np

from repro import Grid1D, ProcessFabric
from repro.transform import (
    assemble_c,
    derive_chain,
    layout_dsc,
    layout_phase,
)
from repro.util.validation import random_matrix


def main() -> None:
    nb, ab = 3, 32
    n = nb * ab
    chain = derive_chain(nb)
    a = random_matrix(n, seed=11)
    b = random_matrix(n, seed=12)
    reference = a @ b

    for label, stage, layout in (
        ("DSC (one migrating thread)", chain.dsc, layout_dsc(a, b, nb)),
        ("phase-shifted (nb carriers)", chain.phased.main,
         layout_phase(a, b, nb)),
    ):
        fabric = ProcessFabric(Grid1D(nb))
        for coord, node_vars in layout.items():
            fabric.load(coord, **node_vars)
        fabric.inject((0,), stage.name)
        result = fabric.run()
        c = assemble_c(result.places, nb, ab)
        err = float(np.linalg.norm(c - reference) / np.linalg.norm(reference))
        print(f"{label}: {nb} OS processes, wall {result.time:.3f} s, "
              f"relative error {err:.2e}")
        assert err < 1e-12

    # the grand finale: the FULLY derived Figure 15 — six mechanical
    # transformations away from the sequential loop nest — on a 3x3
    # grid of real OS processes
    from repro.fabric.topology import Grid2D
    from repro.transform import (
        CarriedSpec,
        derive_full_chain,
        layout_carried_natural,
    )

    g, ab2 = 3, 16
    full = derive_full_chain(g)
    spec = CarriedSpec(g=g)
    a2 = random_matrix(g * ab2, seed=21)
    b2 = random_matrix(g * ab2, seed=22)
    fabric = ProcessFabric(Grid2D(g), timeout=120.0)
    for coord, node_vars in layout_carried_natural(a2, b2, spec).items():
        fabric.load(coord, **node_vars)
    for coord, event, args, count in full.phased_2d.initial_signals:
        fabric.signal_initial(coord, event, *args, count=count)
    fabric.inject((0, 0), full.phased_2d.main.name)
    result = fabric.run()
    c2 = np.empty((g * ab2, g * ab2))
    for coord, node_vars in result.places.items():
        for (i, j), block in node_vars.get("C", {}).items():
            c2[i * ab2 : (i + 1) * ab2, j * ab2 : (j + 1) * ab2] = block
    err = float(np.linalg.norm(c2 - a2 @ b2) / np.linalg.norm(a2 @ b2))
    print(f"derived Figure 15 (full 2-D DPC): {g * g} OS processes, "
          f"wall {result.time:.3f} s, relative error {err:.2e}")
    assert err < 1e-12

    print("state migrated between processes by pickling continuations; "
          "node data never moved.")


if __name__ == "__main__":
    main()
