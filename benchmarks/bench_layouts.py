"""Figures 4, 6, 8, 10, 12, 14 — the initial data distributions of
every stage, rendered as PE maps and cross-checked against the actual
layout builders by content equality (each builder draws fresh operand
arrays from the case's deterministic seed)."""

import numpy as np
from conftest import emit

from repro.fabric import Grid1D, Grid2D, SimFabric
from repro.matmul import (
    MatmulCase,
    layout_1d_a_at_origin,
    layout_1d_a_row_strips,
    layout_2d_antidiagonal,
    layout_2d_natural,
)
from repro.viz import (
    describe_1d_origin,
    describe_1d_phase,
    describe_2d_antidiagonal,
    describe_2d_natural,
    render_figure,
)


def _render_all():
    return "\n\n".join([
        render_figure("Figures 4/6 (1-D DSC and pipelined):",
                      describe_1d_origin(3)),
        render_figure("Figure 8 (1-D phase shifted):",
                      describe_1d_phase(3)),
        render_figure("Figures 10/12 (2-D DSC and pipelined, "
                      "anti-diagonal):", describe_2d_antidiagonal(3)),
        render_figure("Figure 14 (2-D phase shifted, natural):",
                      describe_2d_natural(3)),
    ])


def _check_aliasing():
    """The described placements must match what the builders install."""
    case = MatmulCase(n=48, ab=8)
    a, b = case.operands()

    fabric = SimFabric(Grid1D(3))
    layout_1d_a_row_strips(fabric, case, 3)
    for i in range(3):
        strip = fabric.place((i,)).vars["A"]
        assert np.array_equal(strip, a[i * 16 : (i + 1) * 16, :])

    fabric = SimFabric(Grid2D(3))
    layout_2d_antidiagonal(fabric, case, 3)
    for line in range(3):
        arow = fabric.place((2 - line, line)).vars["Arow"]
        assert np.array_equal(arow, a[(2 - line) * 16 : (3 - line) * 16, :])
        bcol = fabric.place((2 - line, line)).vars["Bcol"]
        assert np.array_equal(bcol, b[:, line * 16 : (line + 1) * 16])

    fabric = SimFabric(Grid2D(3))
    layout_2d_natural(fabric, case, 3)
    for i in range(3):
        for j in range(3):
            blk = fabric.place((i, j)).vars["A"]
            assert np.array_equal(
                blk, a[i * 16 : (i + 1) * 16, j * 16 : (j + 1) * 16])

    fabric = SimFabric(Grid1D(3))
    layout_1d_a_at_origin(fabric, case, 3)
    assert np.array_equal(fabric.place((0,)).vars["A"], a)
    return True


def test_layout_figures(benchmark):
    benchmark(_check_aliasing)
    emit("layouts", _render_all())
