"""Table 2 — out-of-core DSC on 8 PEs at N = 9216: the thrashing
sequential run versus the single migrating DSC thread whose per-PE
share fits in memory."""

from conftest import emit

from repro.machine import SUN_BLADE_100
from repro.machine.memory import PagingModel, matmul_working_set
from repro.perfmodel import build_table2


def _build():
    return build_table2()


def test_table2(benchmark):
    comparison = benchmark(_build)
    text = comparison.render()
    row = comparison.rows[0]
    paging = PagingModel(SUN_BLADE_100.memory)
    ws = matmul_working_set(row.n, SUN_BLADE_100.elem_size)
    text += (
        f"\n\nworking set {ws / 2**20:.0f} MB vs "
        f"{SUN_BLADE_100.memory.available_bytes / 2**20:.0f} MB per PE "
        f"-> sequential thrash factor "
        f"{paging.thrash_factor(ws):.2f} (paper: 2.62)"
    )
    failures = comparison.failed_shapes()
    emit("table2", text)
    assert not failures
    # the headline claim: DSC beats the thrashing sequential run ~2.4x
    dsc = row.cells["navp-1d-dsc"].model_time
    assert row.seq_model / dsc > 2.0
