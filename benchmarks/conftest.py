"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or an
ablation) and both prints the comparison and writes it under
``benchmarks/out/`` so results survive the run.
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def emit(name: str, text: str) -> None:
    """Print a report and persist it to benchmarks/out/<name>.txt."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n[written to benchmarks/out/{name}.txt]")
