"""Record the pre-data-plane baseline for the three wire benchmarks.

The data-plane PR replaced the hop serialization and frame transport
in place, so its "before" cannot be measured by checking out old code
at bench time. Instead, :mod:`repro.perf.wirebench` preserves the old
algorithms behind ``mode="legacy"`` (whole-graph in-band pickling, a
header+payload join copy per send, bytes-concatenation receive) and
``mode="uncoalesced"`` (one frame per hop — the pre-coalescing wire
behaviour), and this script runs them at the *exact* pinned shapes of
the ``payload_roundtrip`` / ``wire_throughput`` / ``wire_coalescing``
suite entries, writing ``BENCH_<date>_prechange.json``.

Run it on the same host as the post-change snapshot, then:

    PYTHONPATH=src python benchmarks/record_dataplane_baseline.py
    PYTHONPATH=src python -m repro.cli bench \\
        --against benchmarks/out/BENCH_<date>_prechange.json

``vs_baseline`` ratios in the resulting ``BENCH_<date>.json`` are then
the data-plane improvement, measured like-for-like.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.perf.report import make_snapshot, write_bench  # noqa: E402
from repro.perf.suite import (  # noqa: E402
    _COALESCE_BATCH,
    _COALESCE_HOPS,
    _PAYLOAD_ORDER,
    _WIRE_SIZES,
)
from repro.perf.wirebench import (  # noqa: E402
    coalescing_microbench,
    payload_roundtrip,
    socket_throughput,
)

REPEATS = 3


def _best(fn):
    best = None
    for _ in range(REPEATS):
        res = fn()
        if best is None or res["wall_s"] < best["wall_s"]:
            best = res
    return best


def legacy_payload_roundtrip() -> dict:
    reps = 600
    res = _best(lambda: payload_roundtrip(
        reps, order=_PAYLOAD_ORDER, mode="legacy"))
    return {
        "wall_s": res["wall_s"],
        "events": reps,
        "events_per_sec": res["roundtrips_per_sec"],
        "meta": {"order": _PAYLOAD_ORDER,
                 "snapshot_bytes": res["snapshot_bytes"],
                 "mode": "legacy"},
    }


def legacy_wire_throughput() -> dict:
    wall = 0.0
    total = 0
    per_size: dict = {}
    for payload_bytes, frames in _WIRE_SIZES:
        res = _best(lambda p=payload_bytes, f=frames: socket_throughput(
            p, f, mode="legacy"))
        wall += res["wall_s"]
        total += payload_bytes * frames
        per_size[str(payload_bytes)] = {
            "frames_per_sec": res["frames_per_sec"],
            "bytes_per_sec": res["bytes_per_sec"],
        }
    return {
        "wall_s": wall,
        "events": total,
        "events_per_sec": total / wall,
        "meta": {"per_size": per_size,
                 "sizes": [list(s) for s in _WIRE_SIZES],
                 "mode": "legacy"},
    }


def legacy_wire_coalescing() -> dict:
    """Pre-change wire: no coalescing existed — one frame per hop."""
    res = _best(lambda: coalescing_microbench(
        _COALESCE_HOPS, coalesce=_COALESCE_BATCH, mode="uncoalesced"))
    return {
        "wall_s": res["wall_s"],
        "events": _COALESCE_HOPS,
        "events_per_sec": res["hops_per_sec"],
        "meta": {"frames": res["frames"], "mode": "uncoalesced"},
    }


def main() -> int:
    results = {
        "payload_roundtrip": legacy_payload_roundtrip(),
        "wire_throughput": legacy_wire_throughput(),
        "wire_coalescing": legacy_wire_coalescing(),
    }
    snapshot = make_snapshot(
        results,
        label="pre-data-plane baseline (legacy codec + wire, best of 3)")
    date = time.strftime("%Y-%m-%d")
    path = write_bench(snapshot, Path(__file__).parent / "out",
                       date=f"{date}_prechange")
    for name, res in results.items():
        print(f"{name:<20} {res['events_per_sec']:>14.0f} events/s "
              f"({res['wall_s']:.3f}s)")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
