"""Table 3 — 2x2 grid: MPI Gentleman, the three 2-D NavP stages, and
SUMMA, for matrix orders 1024..5120, against the paper's numbers."""

from conftest import emit

from repro.perfmodel import build_table3


def _build():
    return build_table3()


def test_table3(benchmark):
    comparison = benchmark(_build)
    failures = comparison.failed_shapes()
    text = comparison.render()
    text += "\n\nshape checks: " + (
        "all passed" if not failures
        else "; ".join(f"{c} ({d})" for c, _ok, d in failures)
    )
    emit("table3", text)
    assert not failures
