"""Ablation — robustness of the conclusions to the calibration.

Perturbs each machine-model constant across its plausible band and
re-checks the paper's core shape claims. The reproduction is only as
good as this table: a claim that flips under a 2x parameter wiggle
would be an artifact of calibration, not a property of the
algorithms."""

from conftest import emit

from repro.perfmodel.sensitivity import CLAIMS, sensitivity_sweep


def test_sensitivity(benchmark):
    rows = benchmark(sensitivity_sweep)
    claims = list(CLAIMS)
    width = max(len(c) for c in claims)
    lines = ["shape claims under machine-model perturbations", ""]
    header = f"{'perturbation':<16}" + "".join(
        f"{i + 1:>4}" for i in range(len(claims)))
    lines.append(header)
    for label, verdicts in rows:
        cells = "".join(
            f"{'ok' if verdicts[c] else 'NO':>4}" for c in claims)
        lines.append(f"{label:<16}{cells}")
    lines.append("")
    for i, claim in enumerate(claims):
        lines.append(f"  {i + 1}: {claim}")
    lines.append("")
    lines.append(
        "findings: the incremental-chain and DSC claims are robust "
        "everywhere; the\nNavP-beats-MPI margin flips exactly where the "
        "mechanism predicts — when the\ncompute/communication ratio "
        "shifts toward communication being free (flops x0.5)\nor when "
        "per-hop state becomes expensive (x16), since NavP's advantage "
        "IS cheap,\noverlapped migration."
    )
    emit("sensitivity", "\n".join(lines))

    by_label = dict(rows)
    # the calibrated point satisfies everything
    assert all(by_label["calibrated"].values())
    # the incremental-methodology claims are robust across the board
    for label, verdicts in rows:
        assert verdicts["1-D chain monotone"], label
        assert verdicts["DSC within 15% of sequential"], label
        if label != "hop state x16":
            assert verdicts["2-D chain monotone"], label
    # the MPI-margin claim holds across network perturbations and both
    # directions of a *faster* CPU, and is expected to flip when compute
    # gets relatively cheap or hops get heavy
    for label in ("bandwidth x0.5", "bandwidth x1.5", "latency x10",
                  "latency /10", "flops x2"):
        assert by_label[label]["phase beats MPI"], label
    assert not by_label["flops x0.5"]["phase beats MPI"]
    assert not by_label["hop state x16"]["phase beats MPI"]