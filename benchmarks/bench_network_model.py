"""Ablation — network model knobs. How the reproduction's conclusions
respond to (a) disabling the small-message bypass (control hops then
queue behind bulk transfers) and (b) scaling link bandwidth. The
paper's qualitative ordering must be robust to (b); (a) shows why
packet-level multiplexing matters for injection sweeps."""

from conftest import emit

from repro.machine import SUN_BLADE_100, NetworkSpec
from repro.matmul import MatmulCase, run_variant


def _phase_time(machine):
    case = MatmulCase(n=1536, ab=128, shadow=True)
    return run_variant("navp-2d-phase", case, geometry=3,
                       machine=machine, trace=False).time


def _ordering_holds(machine) -> bool:
    case = MatmulCase(n=1536, ab=128, shadow=True)
    times = {
        v: run_variant(v, case, geometry=3, machine=machine,
                       trace=False).time
        for v in ("navp-2d-dsc", "navp-2d-pipeline", "navp-2d-phase",
                  "mpi-gentleman")
    }
    return (times["navp-2d-phase"] < times["navp-2d-pipeline"]
            < times["navp-2d-dsc"]
            and times["navp-2d-phase"] < times["mpi-gentleman"])


def _modern_counterfactual():
    """The same programs on ~2020s hardware (50 GFLOP/s, 10 GbE)."""
    from repro.machine import MODERN_CLUSTER

    case = MatmulCase(n=1536, ab=128, shadow=True)
    out = {}
    for variant in ("navp-2d-dsc", "navp-2d-pipeline", "navp-2d-phase",
                    "mpi-gentleman"):
        out[variant] = run_variant(variant, case, geometry=3,
                                   machine=MODERN_CLUSTER,
                                   trace=False).time
    return out


def _sweep():
    base = SUN_BLADE_100
    rows = []
    # (a) small-message bypass off
    no_bypass = base.with_(network=NetworkSpec(
        bandwidth_Bps=base.network.bandwidth_Bps,
        latency_s=base.network.latency_s,
        small_message_bytes=0,
    ))
    rows.append(("bypass on (default)", _phase_time(base)))
    rows.append(("bypass off", _phase_time(no_bypass)))
    # (b) bandwidth scaling
    orderings = []
    for scale in (0.5, 1.0, 2.0, 8.0):
        machine = base.with_(network=NetworkSpec(
            bandwidth_Bps=base.network.bandwidth_Bps * scale,
            latency_s=base.network.latency_s,
        ))
        orderings.append((scale, _ordering_holds(machine)))
    return rows, orderings


def test_network_ablation(benchmark):
    rows, orderings = benchmark(_sweep)
    lines = ["navp-2d-phase at n=1536, 3x3:"]
    for label, t in rows:
        lines.append(f"  {label:<22} {t:8.2f} s")
    lines.append("")
    lines.append("paper ordering (dsc > pipe > phase, phase < MPI) "
                 "vs bandwidth scale:")
    for scale, holds in orderings:
        lines.append(f"  x{scale:<4} {'holds' if holds else 'breaks'}")
    lines.append("")
    lines.append(
        "finding: NavP's edge over MPI is communication hiding, so it "
        "shrinks as the\nnetwork gets faster — on an (anachronistic) "
        "fast link a straightforward MPI\ncatches up, consistent with "
        "the paper's own explanation of where the NavP\nadvantage "
        "comes from (Section 5 item 1)."
    )
    modern = _modern_counterfactual()
    lines.append("")
    lines.append("modern counterfactual (50 GFLOP/s cores, 10 GbE), "
                 "n=1536 on 3x3:")
    for variant, t in modern.items():
        lines.append(f"  {variant:<18} {t * 1000:8.2f} ms")
    lines.append("the incremental ordering survives the 20-year jump "
                 "(compute and network\ngrew by similar factors); only "
                 "absolute times collapse.")
    emit("network_model", "\n".join(lines))

    # the incremental chain still holds on modern hardware
    assert (modern["navp-2d-phase"] < modern["navp-2d-pipeline"]
            < modern["navp-2d-dsc"])

    assert rows[1][1] >= rows[0][1]  # no bypass is never faster
    # the paper's ordering must hold at (and below) the paper's
    # operating point; at many-times-faster links the overlap advantage
    # legitimately evaporates.
    holds_by_scale = dict(orderings)
    assert holds_by_scale[0.5] and holds_by_scale[1.0]
