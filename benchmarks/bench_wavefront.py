"""Extension experiment — the methodology on a dependence-bound
problem. Pipelined wavefront speedup must track the fill formula
R*p/(R+p-1), DSC must stay near (actually below) sequential, and the
NavP pipeline must match the structurally identical MPI version."""

from conftest import emit

from repro.wavefront import (
    WavefrontCase,
    pipeline_time_model,
    run_dsc_wavefront,
    run_mpi_wavefront,
    run_pipelined_wavefront,
    run_sequential_wavefront,
)


def _sweep():
    case = WavefrontCase(n=8192, b=128, shadow=True)
    seq = run_sequential_wavefront(case, trace=False).time
    rows = []
    for p in (2, 4, 8, 16):
        dsc = run_dsc_wavefront(case, p, trace=False).time
        pipe = run_pipelined_wavefront(case, p, trace=False).time
        mpi = run_mpi_wavefront(case, p, trace=False).time
        model = pipeline_time_model(case, p)
        rows.append((p, dsc, pipe, mpi, model))
    return case, seq, rows


def test_wavefront(benchmark):
    case, seq, rows = benchmark(_sweep)
    r_blocks = case.nblocks
    lines = [
        f"wavefront DP, n={case.n}, block {case.b} "
        f"({r_blocks} block rows); sequential {seq:.2f} s",
        f"{'p':>4} {'dsc':>8} {'pipelined':>10} {'mpi':>8} "
        f"{'fill model':>11} {'speedup':>8} {'ideal':>7}",
    ]
    for p, dsc, pipe, mpi, model in rows:
        ideal = r_blocks * p / (r_blocks + p - 1)
        lines.append(
            f"{p:4d} {dsc:8.2f} {pipe:10.2f} {mpi:8.2f} {model:11.2f} "
            f"{seq / pipe:8.2f} {ideal:7.2f}"
        )
    emit("wavefront", "\n".join(lines))

    for p, dsc, pipe, mpi, model in rows:
        ideal = r_blocks * p / (r_blocks + p - 1)
        assert pipe < dsc                    # pipelining improves on DSC
        assert 0.85 <= (seq / pipe) / ideal <= 1.05  # tracks the fill law
        assert abs(pipe - mpi) / mpi < 0.15  # NavP == MPI structurally
        assert abs(pipe - model) / model < 0.12
