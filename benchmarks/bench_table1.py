"""Table 1 — 1-D performance on 3 PEs: sequential, NavP DSC /
pipelining / phase shifting, and the ScaLAPACK-style baseline, for
matrix orders 1536..6144, against the paper's published numbers."""

from conftest import emit

from repro.perfmodel import build_table1


def _build():
    return build_table1()


def test_table1(benchmark):
    comparison = benchmark(_build)
    text = comparison.render()
    failures = comparison.failed_shapes()
    text += "\n\nshape checks: " + (
        "all passed" if not failures
        else "; ".join(f"{c} ({d})" for c, _ok, d in failures)
    )
    emit("table1", text)
    assert not failures
