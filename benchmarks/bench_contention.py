"""Figure 3's discussion — both naive parallelizations fail as the
paper predicts: zero-inventory ``doall`` suffers owner-side contention
that grows with the grid, and the caching variant's resident memory
per PE grows linearly with the grid ("a non-scalable solution") — while
the NavP carriers stay near ideal efficiency at natural-layout memory."""

from conftest import emit

from repro.matmul import MatmulCase, run_variant, sequential_time_model
from repro.matmul.doall import replicated_memory_per_pe


def _sweep():
    rows = []
    for g, n in ((2, 1024), (3, 1536), (4, 2048), (6, 3072), (8, 4096)):
        case = MatmulCase(n=n, ab=128, shadow=True)
        seq, thrash = sequential_time_model(n)
        ideal = (seq / thrash) / (g * g)
        doall = run_variant("doall-naive", case, geometry=g, trace=False)
        repl = run_variant("doall-replicated", case, geometry=g,
                           trace=False)
        navp = run_variant("navp-2d-phase", case, geometry=g, trace=False)
        natural_mem = 3 * (n // g) ** 2 * 4
        rows.append((g, n, ideal, doall.time, repl.time,
                     repl.details["memory_per_pe"] / natural_mem,
                     navp.time))
    return rows


def test_contention(benchmark):
    rows = benchmark(_sweep)
    lines = [
        "naive doall variants vs NavP phase shifting",
        f"{'grid':>6} {'n':>6} {'ideal(s)':>9} {'doall(s)':>9} {'eff':>5} "
        f"{'cached(s)':>10} {'mem x':>6} {'navp(s)':>9} {'eff':>5}",
    ]
    for g, n, ideal, doall_t, repl_t, mem_ratio, navp_t in rows:
        lines.append(
            f"{g}x{g:<4} {n:6d} {ideal:9.2f} {doall_t:9.2f} "
            f"{ideal / doall_t:5.0%} {repl_t:10.2f} {mem_ratio:5.1f}x "
            f"{navp_t:9.2f} {ideal / navp_t:5.0%}"
        )
    lines.append("")
    lines.append("'mem x': resident memory per PE relative to the "
                 "natural layout — the caching\nvariant needs "
                 "(2G+1)/3 times more, growing without bound with the "
                 "grid.")
    emit("contention", "\n".join(lines))

    for g, n, ideal, doall_t, repl_t, mem_ratio, navp_t in rows:
        # NavP beats the zero-inventory doall at every grid
        assert navp_t < doall_t
        # the caching variant's memory overhead is (2G+1)/3
        assert mem_ratio == (2 * g + 1) / 3
    # doall's efficiency decays with the grid; replication's memory grows
    assert rows[-1][2] / rows[-1][3] < rows[0][2] / rows[0][3]
    assert rows[-1][5] > rows[0][5]
