"""Ablation — the same messenger program across all three fabrics:
virtual-time simulation, real daemon threads (pickled hops), and real
OS processes (pickled continuations). Correctness must be identical;
this also measures the harness overhead of each substrate."""

import time

from conftest import emit

from repro import Grid1D, ProcessFabric
from repro.matmul import MatmulCase, run_phase_1d
from repro.transform import assemble_c, derive_chain, layout_phase
from repro.util.validation import assert_allclose, random_matrix


def _run_all():
    case = MatmulCase(n=48, ab=8)
    reference = case.reference()
    rows = []

    t0 = time.perf_counter()
    sim = run_phase_1d(case, 3, fabric="sim")
    rows.append(("sim (virtual time)", time.perf_counter() - t0, sim.time))
    assert_allclose(sim.c, reference, what="sim")

    t0 = time.perf_counter()
    thr = run_phase_1d(case, 3, fabric="thread")
    rows.append(("threads (pickled hops)", time.perf_counter() - t0,
                 thr.time))
    assert_allclose(thr.c, reference, what="thread")

    nb, ab = 3, 16
    chain = derive_chain(nb)
    a = random_matrix(nb * ab, 3)
    b = random_matrix(nb * ab, 4)
    t0 = time.perf_counter()
    fabric = ProcessFabric(Grid1D(nb))
    for coord, node_vars in layout_phase(a, b, nb).items():
        fabric.load(coord, **node_vars)
    fabric.inject((0,), chain.phased.main.name)
    result = fabric.run()
    rows.append(("processes (pickled continuations)",
                 time.perf_counter() - t0, result.time))
    assert_allclose(assemble_c(result.places, nb, ab), a @ b,
                    what="process")
    return rows


def test_fabric_parity(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [
        "phase-shifted matmul on all three fabrics (same program model)",
        f"{'fabric':<34} {'harness wall(s)':>15} {'reported time':>14}",
    ]
    for name, wall, reported in rows:
        lines.append(f"{name:<34} {wall:15.3f} {reported:14.4f}")
    emit("fabrics", "\n".join(lines))
