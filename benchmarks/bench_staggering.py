"""Section 5 item 3 — "reverse staggering never requires more than two
communication phases, while forward staggering often requires three".
Phase counts for both schemes across matrix/grid orders, with explicit
schedules validating the closed form."""

from conftest import emit

from repro.matmul.staggering import (
    forward_stagger_permutation,
    phases_for_permutation,
    reverse_stagger_permutation,
    schedule_permutation_phases,
    staggering_comparison,
)


def _compare():
    return staggering_comparison(range(2, 33))


def test_staggering_phases(benchmark):
    rows = benchmark(_compare)
    lines = [
        "communication phases needed to stagger an order-n matrix",
        "(each PE at most one transfer per phase; self-moves free)",
        f"{'n':>4} {'forward (Gentleman/Cannon)':>28} {'reverse (NavP)':>16}",
    ]
    for n, fwd, rev in rows:
        lines.append(f"{n:4d} {fwd:28d} {rev:16d}")
    forwards = [fwd for _n, fwd, _r in rows]
    reverses = [rev for _n, _f, rev in rows]
    lines.append("")
    lines.append(f"reverse max: {max(reverses)} (paper: never more than 2)")
    lines.append(
        f"forward needs 3 for {sum(1 for f in forwards if f == 3)} of "
        f"{len(forwards)} orders (paper: 'often requires three'; "
        f"2 only when n is a power of two)"
    )
    emit("staggering", "\n".join(lines))

    assert max(reverses) <= 2
    assert all(
        fwd == (2 if (n & (n - 1)) == 0 else 3)
        for n, fwd, _ in rows
    )
    # the constructive schedules agree with the closed form
    for n in (3, 4, 5, 9, 16):
        for row in range(n):
            for build in (forward_stagger_permutation,
                          reverse_stagger_permutation):
                perm = build(n, row)
                assert len(schedule_permutation_phases(perm)) == \
                    phases_for_permutation(perm)
