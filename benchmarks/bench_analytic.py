"""Ablation — the discrete-event results against first-order closed
forms built from the same machine constants. Agreement validates that
the DES timing comes from the modeled physics (compute, pipeline
fill, message time), not from accidental scheduling artifacts."""

from conftest import emit

from repro.matmul import MatmulCase, run_variant
from repro.perfmodel import predict

CASES = [
    ("navp-1d-dsc", 1536, 128, 3),
    ("navp-1d-pipeline", 1536, 128, 3),
    ("navp-1d-phase", 1536, 128, 3),
    ("navp-2d-dsc", 1536, 128, 3),
    ("navp-2d-pipeline", 1536, 128, 3),
    ("navp-2d-phase", 1536, 128, 3),
    ("mpi-gentleman", 1536, 128, 3),
    ("scalapack-summa", 1536, 128, 3),
    ("navp-2d-phase", 4608, 128, 3),
    ("mpi-gentleman", 2048, 128, 2),
]


def _run_all():
    rows = []
    for variant, n, ab, g in CASES:
        case = MatmulCase(n=n, ab=ab, shadow=True)
        sim = run_variant(variant, case, geometry=g, trace=False).time
        closed = predict(variant, n, ab, g)
        rows.append((variant, n, g, sim, closed))
    return rows


def test_analytic_crosscheck(benchmark):
    rows = benchmark(_run_all)
    lines = [
        "DES vs first-order closed forms",
        f"{'variant':<18} {'n':>5} {'grid':>4} {'sim(s)':>9} "
        f"{'analytic(s)':>11} {'ratio':>6}",
    ]
    for variant, n, g, sim, closed in rows:
        lines.append(
            f"{variant:<18} {n:5d} {g:4d} {sim:9.2f} {closed:11.2f} "
            f"{sim / closed:6.3f}"
        )
    emit("analytic", "\n".join(lines))
    for variant, n, g, sim, closed in rows:
        assert 0.85 <= sim / closed <= 1.20, (variant, n, g, sim, closed)
