"""Ablation — logical nodes vs physical hosts.

MESSENGERS daemons host many logical nodes; the paper's fine-grained
``N == P`` programs run unchanged when several logical PEs share a
workstation. This bench maps the fine-grained Figure 15 program
(9 logical nodes) onto 1, 3 and 9 physical hosts of the calibrated
cluster: the program is untouched, only the host map changes, and the
makespan scales with the *physical* parallelism."""

from conftest import emit

from repro.fabric import SimFabric, block_hosts
from repro.fabric.topology import Grid2D
from repro.machine import SUN_BLADE_100
from repro.matmul.ir2d import build_fig15
from repro.navp.interp import IRMessenger
from repro.util.validation import random_matrix


def _sweep():
    rows = []
    for n_hosts in (1, 3, 9):
        a = random_matrix(3 * 128, 401)
        b = random_matrix(3 * 128, 402)
        suite = build_fig15(3, a, b, ab=128)
        grid = Grid2D(3)
        fabric = SimFabric(grid, machine=SUN_BLADE_100,
                           hosts=block_hosts(grid, n_hosts))
        for coord, node_vars in suite.layout.items():
            fabric.load(coord, **node_vars)
        fabric.inject((0, 0), IRMessenger(suite.entry.name))
        rows.append((n_hosts, fabric.run().time))
    return rows


def test_virtualization(benchmark):
    rows = benchmark(_sweep)
    base = dict(rows)[1]
    lines = [
        "Figure 15 program (9 logical PEs, n=384) on varying hosts",
        f"{'hosts':>6} {'time(s)':>9} {'speedup':>8}",
    ]
    for n_hosts, t in rows:
        lines.append(f"{n_hosts:6d} {t:9.4f} {base / t:8.2f}")
    lines.append("")
    lines.append("same program, same logical network — only the host "
                 "map changed.")
    emit("virtualization", "\n".join(lines))

    times = dict(rows)
    assert times[9] < times[3] < times[1]
    assert base / times[9] > 3.0