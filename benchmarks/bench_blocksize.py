"""Ablation — algorithmic block order sweep. The paper credits its DSC
and pipelining performance to algorithmic blocks letting carriers
"spread out their computations to the entire network earlier"
(Section 5). Sweeping ab shows the trade-off: large blocks starve the
pipeline (late spreading), tiny blocks drown in per-hop latency."""

from conftest import emit

from repro.matmul import MatmulCase, run_variant, sequential_time_model

ORDERS = (64, 128, 256, 512, 1536)


def _sweep():
    n, g = 1536, 3
    seq, thrash = sequential_time_model(n)
    baseline = seq / thrash
    rows = []
    for ab in ORDERS:
        case = MatmulCase(n=n, ab=ab, shadow=True)
        pipe = run_variant("navp-1d-pipeline", case, geometry=g, trace=False)
        phase_sp = None
        if (n // g) % ab == 0:  # 2-D needs ab to divide the block size
            phase2 = run_variant("navp-2d-phase", case, geometry=g,
                                 trace=False)
            phase_sp = baseline / phase2.time
        rows.append((ab, baseline / pipe.time, phase_sp))
    return rows


def test_blocksize_sweep(benchmark):
    rows = benchmark(_sweep)
    lines = [
        "speedup vs algorithmic block order (n=1536, 3 PEs / 3x3)",
        f"{'ab':>6} {'navp-1d-pipeline':>17} {'navp-2d-phase':>14}",
    ]
    for ab, pipe_sp, phase_sp in rows:
        phase_cell = f"{phase_sp:14.2f}" if phase_sp is not None else \
            f"{'(ab > n/G)':>14}"
        lines.append(f"{ab:6d} {pipe_sp:17.2f} {phase_cell}")
    lines.append("")
    lines.append("ab = n (one block = the whole strip) removes the "
                 "pipeline: the 1-D stage degenerates toward DSC.")
    emit("blocksize", "\n".join(lines))

    by_ab = {ab: (p, q) for ab, p, q in rows}
    # the paper's operating point (128) must beat the no-pipelining
    # extreme (ab = n) substantially in 1-D
    assert by_ab[128][0] > by_ab[1536][0] * 1.5
    # sub-distribution-block pipelining is what carries the 2-D phase
    # variant: at ab = n/G (one slice per block, no k-pipelining) the
    # speedup collapses relative to the paper's operating point
    assert by_ab[128][1] > by_ab[512][1] * 1.25
    assert min(q for ab, _p, q in rows if q is not None and ab <= 256) > 6.5
