"""Ablation — daemon run-queue policy.

Section 5 item 1 credits NavP's performance partly to "efficient
run-time task scheduling, handled by the queuing mechanisms built into
the MESSENGERS daemon". This ablation swaps the per-PE CPU queue
between FIFO (the daemon's policy) and LIFO and re-runs the headline
row: the numerics must be bit-identical (scheduling cannot change
*what* is computed, only *when*) and the makespans must stay close —
the algorithms' performance rests on overlap structure, not on a lucky
queue discipline."""

import numpy as np
from conftest import emit

from repro.fabric import Grid2D, SimFabric
from repro.machine import SUN_BLADE_100
from repro.matmul import MatmulCase
from repro.matmul.layouts import gather_c_2d, layout_2d_natural
from repro.matmul.navp2d import _PhaseInjector2D


def _run(case: MatmulCase, policy: str):
    fabric = SimFabric(Grid2D(3), machine=SUN_BLADE_100,
                       cpu_policy=policy, trace=False)
    layout_2d_natural(fabric, case, 3)
    fabric.inject((0, 0), _PhaseInjector2D(case, 3))
    result = fabric.run()
    return result.time, gather_c_2d(result, case, 3)


def _compare():
    timing_case = MatmulCase(n=1536, ab=128, shadow=True)
    fifo_t, _ = _run(timing_case, "fifo")
    lifo_t, _ = _run(timing_case, "lifo")

    value_case = MatmulCase(n=48, ab=8, seed=66)
    _, fifo_c = _run(value_case, "fifo")
    _, lifo_c = _run(value_case, "lifo")
    identical = bool(np.array_equal(fifo_c, lifo_c))
    return fifo_t, lifo_t, identical


def test_scheduling_policy(benchmark):
    fifo_t, lifo_t, identical = benchmark(_compare)
    lines = [
        "navp-2d-phase (n=1536, 3x3) under daemon queue policies",
        f"  FIFO (MESSENGERS): {fifo_t:8.3f} s",
        f"  LIFO             : {lifo_t:8.3f} s "
        f"({100 * (lifo_t / fifo_t - 1):+.1f}%)",
        f"  products bit-identical: {identical}",
    ]
    emit("scheduling", "\n".join(lines))
    assert identical
    assert abs(lifo_t - fifo_t) / fifo_t < 0.10