"""The transformation tool itself — derive the paper's ENTIRE journey
(Figure 2 -> 5 -> 7 -> 9 -> 11 -> 13 -> 15) mechanically, verify every
stage semantically, and confirm the core promise: each intermediate
program is a working improvement over its predecessor."""

import numpy as np
from conftest import emit

from repro.fabric import Grid2D, SimFabric
from repro.machine import FAST_TEST_MACHINE
from repro.navp.interp import IRMessenger
from repro.transform import (
    CarriedSpec,
    derive_chain,
    derive_full_chain,
    layout_carried_antidiagonal,
    layout_carried_natural,
    verify_chain,
)
from repro.util.validation import random_matrix


def _run_2d(suite, layout, g, ab, reference):
    fabric = SimFabric(Grid2D(g), machine=FAST_TEST_MACHINE)
    for coord, node_vars in layout.items():
        fabric.load(coord, **node_vars)
    for coord, event, args, count in suite.initial_signals:
        fabric.signal_initial(coord, event, *args, count=count)
    fabric.inject((0, 0), IRMessenger(suite.main.name))
    result = fabric.run()
    c = np.empty((g * ab, g * ab))
    for _coord, node_vars in result.places.items():
        for (i, j), block in node_vars.get("C", {}).items():
            c[i * ab : (i + 1) * ab, j * ab : (j + 1) * ab] = block
    err = float(np.linalg.norm(c - reference)
                / np.linalg.norm(reference))
    return result.time, err


def _derive_and_verify():
    g, ab = 4, 8
    report = verify_chain(derive_chain(g), ab=ab,
                          machine=FAST_TEST_MACHINE)
    rows = [(name, t, err) for name, t, err in report]

    chain = derive_full_chain(g)
    spec = CarriedSpec(g=g)
    a = random_matrix(g * ab, 501)
    b = random_matrix(g * ab, 502)
    reference = a @ b
    t13, e13 = _run_2d(chain.pipelined_2d,
                       layout_carried_antidiagonal(a, b, spec), g, ab,
                       reference)
    rows.append(("2-D pipelined (fig 13)", t13, e13))
    t15, e15 = _run_2d(chain.phased_2d,
                       layout_carried_natural(a, b, spec), g, ab,
                       reference)
    rows.append(("2-D phase-shifted (fig 15)", t15, e15))
    return rows


def test_transform_chain(benchmark):
    rows = benchmark(_derive_and_verify)
    lines = [
        "the ENTIRE incremental journey, derived mechanically "
        "(g=4, ab=8, compute-dominated test machine)",
        f"{'stage':<28} {'time(s)':>9} {'rel.err':>10}",
    ]
    for name, t, err in rows:
        lines.append(f"{name:<28} {t:9.4f} {err:10.2e}")
    emit("transform", "\n".join(lines))

    times = {name: t for name, t, _err in rows}
    # every stage is numerically exact
    assert all(err < 1e-12 for _n, _t, err in rows)
    # each parallelizing step improves on its predecessor
    assert times["pipelined"] < times["dsc"]
    assert times["phase-shifted"] < times["pipelined"]
    # and the second dimension improves on the first
    assert times["2-D pipelined (fig 13)"] < times["phase-shifted"]
    assert (times["2-D phase-shifted (fig 15)"]
            < times["phase-shifted"])
