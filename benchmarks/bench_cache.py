"""Section 5 item 2 — the cache argument: sequential and NavP keep one
algorithmic block resident while MPI cycles fresh A-B-C triplets. The
block-LRU simulation quantifies it; the paper's technical report puts
the NavP advantage at ~4%."""

from conftest import emit

from repro.machine.cache import (
    LRUBlockCache,
    cache_factors,
    trace_mpi_gentleman,
    trace_navp,
    trace_sequential,
)


def _factors():
    return cache_factors(ab=128, elem_size=4, tile_blocks=8)


def test_cache_model(benchmark):
    factors = benchmark(_factors)
    misses = factors["misses"]
    lines = [
        "block-LRU simulation of the three inner-loop structures",
        f"(cache: {factors['capacity_blocks']} blocks of 128x128 floats "
        f"= 256 KB UltraSPARC-IIe E-cache)",
        "",
        f"{'pattern':<12} {'misses/block-op':>16} {'compute factor':>15}",
    ]
    for kind in ("sequential", "navp", "mpi"):
        lines.append(
            f"{kind:<12} {misses[kind]:16.3f} {factors[kind]:15.3f}")
    gap = factors["mpi"] / factors["navp"] - 1.0
    lines.append("")
    lines.append(f"MPI pays {100 * gap:.1f}% over NavP (paper: ~4%)")
    emit("cache", "\n".join(lines))

    # the mechanism: NavP streams 2 fresh blocks per op, MPI 3
    assert misses["mpi"] > misses["navp"]
    assert abs(misses["navp"] - misses["sequential"]) < 0.2
    assert 0.025 <= gap <= 0.055

    # the resident-block claims, directly on the traces: for the same
    # number of block-ops, the patterns with a resident operand touch
    # memory less (the carried mA hits; C is folded into t)
    cap = factors["capacity_blocks"]
    seq = LRUBlockCache(cap).run(trace_sequential(8))
    navp = LRUBlockCache(cap).run(trace_navp(8))
    mpi = LRUBlockCache(cap).run(trace_mpi_gentleman(8))
    assert navp.miss_rate < mpi.miss_rate
    assert seq.misses < mpi.misses
    assert navp.misses < mpi.misses
