"""Table 4 — 3x3 grid: the paper's headline comparison. NavP phase
shifting should win over straightforward MPI Gentleman and sit at or
above the tuned ScaLAPACK baseline, with the incremental stages
improving monotonically."""

from conftest import emit

from repro.perfmodel import build_table4


def _build():
    return build_table4()


def test_table4(benchmark):
    comparison = benchmark(_build)
    failures = comparison.failed_shapes()
    text = comparison.render()
    text += "\n\nshape checks: " + (
        "all passed" if not failures
        else "; ".join(f"{c} ({d})" for c, _ok, d in failures)
    )
    emit("table4", text)
    assert not failures
    # the paper's headline: NavP 2-D phase beats MPI Gentleman everywhere
    for row in comparison.rows:
        assert (row.cells["navp-2d-phase"].model_time
                < row.cells["mpi-gentleman"].model_time)
