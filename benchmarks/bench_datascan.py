"""Extension experiment — computation-to-data vs data-to-computation.

Sweeps the dataset size and records the cost of answering a histogram
query by shipping data to one PE versus scanning with migrating
messengers versus an SPMD reduction. The DSC scan must win over
shipping by roughly the ratio of data bytes to partial bytes' transfer
cost, and the advantage must *grow* with the dataset."""

from conftest import emit

from repro.datascan import (
    DataScanCase,
    histogram,
    run_navp_scan,
    run_ship_data,
    run_spmd_reduce,
)


def _sweep():
    query = histogram(64)
    rows = []
    for items in (50_000, 200_000, 800_000):
        case = DataScanCase(pes=8, items_per_pe=items)
        rows.append((
            items,
            run_ship_data(case, query).time,
            run_navp_scan(case, query).time,
            run_navp_scan(case, query, carriers=4).time,
            run_spmd_reduce(case, query).time,
        ))
    return rows


def test_datascan(benchmark):
    rows = benchmark(_sweep)
    lines = [
        "histogram(64) over 8 partitions (times in modeled seconds)",
        f"{'items/PE':>10} {'ship-data':>10} {'scan x1':>9} "
        f"{'scan x4':>9} {'reduce':>8} {'ship/scan':>10}",
    ]
    for items, ship, scan1, scan4, red in rows:
        lines.append(f"{items:10,d} {ship:10.3f} {scan1:9.3f} "
                     f"{scan4:9.3f} {red:8.3f} {ship / scan1:9.1f}x")
    emit("datascan", "\n".join(lines))

    ratios = [ship / scan1 for _i, ship, scan1, _s4, _r in rows]
    assert all(r > 3 for r in ratios)
    assert ratios[-1] > ratios[0]          # the gap grows with the data
    for _items, ship, scan1, scan4, red in rows:
        assert red <= scan4 <= scan1 < ship