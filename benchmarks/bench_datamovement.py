"""Gentleman's own lens — data movement as the limiting factor.

Section 3 of the paper cites Gentleman's complexity results: data
movement, not arithmetic, bounds parallel matmul. Every simulated
transfer is ledgered in the trace, so this bench measures exactly how
many bytes each variant moves for the same product, and checks the
measurements against first-order closed forms."""

from conftest import emit

from repro.matmul import MatmulCase
from repro.matmul.analysis import expected_bytes, measure_movement

VARIANTS = [
    "navp-1d-dsc", "navp-1d-pipeline", "navp-1d-phase",
    "navp-2d-dsc", "navp-2d-pipeline", "navp-2d-phase",
    "mpi-gentleman", "mpi-gentleman-tuned", "scalapack-summa",
    "doall-naive",
]


def _measure():
    case = MatmulCase(n=1536, ab=128, shadow=True)
    return [measure_movement(v, case, 3) for v in VARIANTS]


def test_data_movement(benchmark):
    reports = benchmark(_measure)
    lines = [
        "bytes moved to multiply n=1536 matrices on 3 PEs / 3x3 "
        "(model: 4 B/element; one matrix = 9.4 MB)",
        f"{'variant':<22} {'total MB':>9} {'msgs':>6} {'max in/PE':>10} "
        f"{'bytes/flop':>11} {'time(s)':>8}",
    ]
    for r in reports:
        lines.append(
            f"{r.variant:<22} {r.total_bytes / 1e6:9.1f} {r.messages:6d} "
            f"{r.max_in_per_pe / 1e6:8.1f}MB {r.bytes_per_flop:11.4f} "
            f"{r.time:8.2f}"
        )
    lines.append("")
    lines.append("NavP's reverse-staggered carriers move ~22% fewer "
                 "bytes than Gentleman's\nshift rounds for the same "
                 "product; the 1-D pipeline is the leanest of all\n"
                 "(each A strip crosses the chain exactly once).")
    emit("datamovement", "\n".join(lines))

    by_name = {r.variant: r for r in reports}
    # NavP's final stage moves less data than Gentleman's algorithm
    assert (by_name["navp-2d-phase"].total_bytes
            < by_name["mpi-gentleman"].total_bytes)
    # tuning Gentleman changes overlap, not volume
    assert (by_name["mpi-gentleman-tuned"].total_bytes
            == by_name["mpi-gentleman"].total_bytes)
    # measurements track the closed forms
    for variant in ("navp-1d-dsc", "navp-1d-pipeline", "navp-1d-phase",
                    "navp-2d-phase", "mpi-gentleman"):
        expected = expected_bytes(variant, 1536, 128, 3)
        ratio = by_name[variant].total_bytes / expected
        assert 0.75 <= ratio <= 1.05, (variant, ratio)