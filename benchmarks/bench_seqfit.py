"""The paper's baseline methodology — cubic least-squares fits of
sequential times from small problems, extrapolated past the paging
knee, reproduced inside the model and compared with the paper's
starred values."""

from conftest import emit

from repro.perfmodel import reproduce_fit


def _fit():
    return reproduce_fit()


def test_seqfit(benchmark):
    report = benchmark(_fit)
    emit("seqfit", report.render())
    for n, actual, fitted, paging_free, star in report.rows:
        # the fit recovers the paging-free cubic essentially exactly
        assert abs(fitted - paging_free) / paging_free < 0.01
        # and lands within 5% of the paper's own starred values
        if star is not None:
            assert abs(fitted - star) / star < 0.05
        # while the actual (thrashing) time sits above it at large n
        assert actual >= paging_free * 0.999
