"""Figure 1 — the space-time diagrams of the three transformations,
regenerated from execution traces at the paper's N == P granularity."""

from conftest import emit

from repro.perfmodel import build_figure1, figure1_report


def _build():
    return build_figure1(p=3, ab=64)


def test_figure1(benchmark):
    panels = benchmark(_build)
    report = figure1_report(panels)
    parts = [p.diagram + f"\n(makespan {p.time:.4f} s)" for p in panels]
    parts.append("claims:")
    parts += [
        f"  [{'ok' if ok else 'FAIL'}] {claim}  {detail}"
        for claim, ok, detail in report
    ]
    emit("figure1", "\n\n".join(parts))
    assert all(ok for _c, ok, _d in report)
